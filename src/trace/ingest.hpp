// Incremental dataset maintenance for streaming ingest (`hpcfail serve`).
//
// The batch pipeline builds one immutable FailureDataset and one
// DatasetIndex over it. A live daemon cannot afford a full O(n log n)
// re-sort + reindex per arriving event, so LiveDataset splits the data in
// two:
//
//   * the *sealed* prefix: an immutable FailureDataset (with its index
//     already built) published to readers as a shared_ptr snapshot;
//   * the *tails*: recent appends, kept columnar in arrival order in one
//     tail per ingest shard, plus per-shard per-(system, node) posting
//     lists (each node's start times, ascending) that are updated in
//     O(1) amortized per append and cover sealed + tails, so exact
//     per-node interarrival queries never wait for a rebuild.
//
// When the combined tails outgrow the rebuild policy
// (max(min_rebuild_tail, rebuild_fraction x sealed size) — geometric
// growth, so the total merge work over n appends is O(n log n)
// amortized, not O(n^2)), a seal swaps every shard's tail out under its
// shard mutex and runs the shared stable radix merge (trace/merge.hpp)
// over [sealed, tail 0, tail 1, ...]. Stability keeps equal
// (start, system, node) keys in part order — sealed first, then shard
// order — which equals one stable sort of the concatenation, so the
// sealed snapshot is bit-identical to a from-scratch build at any shard
// count whenever records have unique keys (and deterministic for a
// fixed partition otherwise). The new index is built *before* the
// snapshot pointer swap, so readers never block and never observe a
// half-built index.
//
// Retention (Options::retain_seconds / max_sealed_events) bounds memory
// on unbounded runs: at seal time the merged prefix older than the
// horizon is folded into a per-(system, node, cause) dist::SuffStats
// compaction ledger (repair minutes) and dropped from the raw store.
// The cut always lands on a start-timestamp boundary, so the dropped
// set is exactly {rows : start < horizon} and compaction commutes with
// re-partitioning. Late arrivals older than the horizon are accepted
// into a tail, then compacted at the next seal — they never resurrect
// dropped raw rows, and posting lists cover only the retained horizon.
//
// Threading contract: append(shard, r)/drain(shard, ...) are
// single-writer *per shard*; distinct shards may ingest concurrently.
// seal() is safe from any thread (serialized internally) and runs
// concurrently with appends — it holds each shard mutex only to swap
// the tail out and to trim posting lists. snapshot()/epoch()/
// sealed_size()/tail_size()/size()/compacted_events()/
// compaction_cells()/node_starts()/node_interarrivals() are safe from
// any thread. Snapshots are immutable and remain valid after further
// appends and seals.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "dist/suffstats.hpp"
#include "trace/columns.hpp"
#include "trace/dataset.hpp"
#include "trace/source.hpp"

namespace hpcfail::obs {
class Counter;
}  // namespace hpcfail::obs

namespace hpcfail::trace {

/// One compaction-ledger cell: the sufficient statistics of the repair
/// minutes of every raw event of one (system, node, cause) dropped past
/// the retention horizon.
struct CompactionCell {
  int system_id = 0;
  int node_id = 0;
  RootCause cause = RootCause::unknown;
  dist::SuffStats repair_minutes;
};

class LiveDataset {
 public:
  struct Options {
    /// Epoch rebuild policy: a seal is triggered when the combined
    /// tails reach max(min_rebuild_tail, rebuild_fraction * sealed).
    std::size_t min_rebuild_tail = 8192;
    double rebuild_fraction = 0.5;
    /// Ingest partitions. Each shard has its own tail and posting
    /// lists and accepts appends concurrently with the other shards.
    std::size_t shards = 1;
    /// Raw events whose start is more than retain_seconds behind the
    /// latest sealed start are compacted at seal time (0 = keep all).
    Seconds retain_seconds = 0;
    /// Sealed store is trimmed to at most this many raw events at seal
    /// time, rounded down to a start-timestamp boundary (0 = no limit).
    std::size_t max_sealed_events = 0;
    /// Resolution floor for the compaction ledger's repair minutes.
    double compaction_repair_floor = 1e-9;
  };

  LiveDataset();
  explicit LiveDataset(Options options);

  /// Seeds the sealed prefix from an existing dataset and derives the
  /// live posting lists from it.
  LiveDataset(FailureDataset seed, Options options);
  explicit LiveDataset(FailureDataset seed);

  /// Appends one record to shard 0; may trigger a seal per the rebuild
  /// policy. Throws InvalidArgument on an inconsistent record (same
  /// rule as FailureDataset construction).
  void append(const FailureRecord& r) { append(0, r); }

  /// Appends one record to the given shard (single writer per shard).
  void append(std::size_t shard, const FailureRecord& r);

  /// Pulls events from `source` into shard 0 until it reports idle/end
  /// or `max_events` have been appended. Returns the number appended.
  std::size_t drain(Source& source,
                    std::size_t max_events = static_cast<std::size_t>(-1)) {
    return drain(0, source, max_events);
  }

  /// Shard-targeted drain (single writer per shard).
  std::size_t drain(std::size_t shard, Source& source,
                    std::size_t max_events = static_cast<std::size_t>(-1));

  /// Forces an epoch rebuild now (no-op when every tail is empty).
  /// Safe from any thread; blocks while another seal is in flight.
  void seal();

  /// The current sealed snapshot (tail records are *not* included; call
  /// seal() first for an up-to-the-last-append dataset). Never null.
  std::shared_ptr<const FailureDataset> snapshot() const;

  std::size_t shards() const noexcept { return shards_.size(); }

  /// Number of seals performed (0 = nothing sealed yet).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  std::size_t sealed_size() const noexcept {
    return sealed_count_.load(std::memory_order_acquire);
  }
  /// Records appended but not yet sealed — the index epoch lag.
  std::size_t tail_size() const noexcept {
    return tail_count_.load(std::memory_order_acquire);
  }
  std::size_t size() const noexcept { return sealed_size() + tail_size(); }

  /// Raw events compacted into the retention ledger and dropped from
  /// the sealed store. sealed + tails + compacted == appended (plus the
  /// seed), always.
  std::uint64_t compacted_events() const noexcept {
    return compacted_events_.load(std::memory_order_acquire);
  }

  /// First retained start timestamp: every compacted event had
  /// start < retention_horizon(). Meaningful only when
  /// compacted_events() > 0.
  Seconds retention_horizon() const noexcept {
    return retention_horizon_.load(std::memory_order_acquire);
  }

  /// The compaction ledger, ordered by (system, node, cause). Each
  /// cell's SuffStats::add sequence follows the global (start, system,
  /// node) order of the dropped rows, so the ledger is deterministic
  /// for a given record stream.
  std::vector<CompactionCell> compaction_cells() const;

  /// Wall-clock cost of the most recent seal, in milliseconds.
  double last_rebuild_ms() const noexcept {
    return last_rebuild_ms_.load(std::memory_order_acquire);
  }

  /// Exact per-node interarrival gaps (seconds) over sealed + tails,
  /// from the live posting lists — no rebuild required. Under
  /// retention, covers only events at/after the horizon.
  std::vector<double> node_interarrivals(int system_id, int node_id) const;

  /// Start times of one node, ascending, over sealed + tails (merged
  /// across shards). Empty when the node has no failures.
  std::vector<Seconds> node_starts(int system_id, int node_id) const;

 private:
  /// Per-shard ingest state. The mutex guards tail + starts; the hot
  /// append path takes it uncontended (a seal contends only to swap
  /// the tail out or trim posting lists).
  struct Shard {
    mutable std::mutex mutex;
    ColumnStore tail;
    std::map<std::pair<int, int>, std::vector<Seconds>> starts;
  };

  void publish(std::shared_ptr<const FailureDataset> next);
  void index_starts(const ColumnStore& columns);
  std::size_t seal_threshold() const noexcept;
  void maybe_seal();
  void do_seal();  ///< requires seal_mutex_ held
  /// First retained row of the merged store under the retention policy
  /// (always at a start-timestamp boundary; 0 = keep everything).
  std::size_t retention_cut(const ColumnStore& merged) const;
  /// Folds rows [0, cut) into the ledger, advances the horizon, and
  /// trims every shard's posting lists below it.
  void compact_prefix(const ColumnStore& merged, std::size_t cut);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex seal_mutex_;  ///< serializes seals; never held on append

  mutable std::mutex sealed_mutex_;  ///< guards sealed_ pointer swap only
  std::shared_ptr<const FailureDataset> sealed_;

  mutable std::mutex compaction_mutex_;  ///< guards compacted_ ledger
  std::map<std::tuple<int, int, RootCause>, dist::SuffStats> compacted_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> sealed_count_{0};
  std::atomic<std::size_t> tail_count_{0};
  std::atomic<std::uint64_t> compacted_events_{0};
  std::atomic<Seconds> retention_horizon_{
      std::numeric_limits<Seconds>::min()};
  std::atomic<double> last_rebuild_ms_{0.0};
  /// Lazy obs handles (resolved on first use so enabling obs after
  /// construction still counts); atomic mirrors
  /// DatasetIndex::view_hits_.
  mutable std::atomic<obs::Counter*> appends_counter_{nullptr};
  mutable std::atomic<obs::Counter*> compactions_counter_{nullptr};
};

}  // namespace hpcfail::trace
