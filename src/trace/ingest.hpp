// Incremental dataset maintenance for streaming ingest (`hpcfail serve`).
//
// The batch pipeline builds one immutable FailureDataset and one
// DatasetIndex over it. A live daemon cannot afford a full O(n log n)
// re-sort + reindex per arriving event, so LiveDataset splits the data in
// two:
//
//   * the *sealed* prefix: an immutable FailureDataset (with its index
//     already built) published to readers as a shared_ptr snapshot;
//   * the *tail*: recent appends, kept columnar in arrival order, plus
//     live per-(system, node) posting lists (each node's start times,
//     ascending) that are updated in O(1) amortized per append and cover
//     sealed + tail, so exact per-node interarrival queries never wait
//     for a rebuild.
//
// When the tail outgrows the rebuild policy (max(min_rebuild_tail,
// rebuild_fraction x sealed size) — geometric growth, so the total merge
// work over n appends is O(n log n) amortized, not O(n^2)), seal() stable-
// sorts the tail and two-way merges it with the sealed columns (sealed
// first on full-key ties, which equals one stable sort of the
// concatenation), revalidates in one fused pass, builds the new index
// *before* publishing, and swaps the snapshot pointer under a mutex held
// only for the pointer swap. Readers therefore never block on a rebuild
// and never observe a half-built index.
//
// Threading contract: append()/drain()/seal()/node_interarrivals() are
// single-writer (the ingest thread); snapshot()/epoch()/sealed_size()/
// tail_size()/size() are safe from any thread concurrently with the
// writer. Snapshots are immutable and remain valid after further appends
// and seals (the previous epoch's dataset lives until the last reader
// drops its shared_ptr).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "trace/columns.hpp"
#include "trace/dataset.hpp"
#include "trace/source.hpp"

namespace hpcfail::obs {
class Counter;
}  // namespace hpcfail::obs

namespace hpcfail::trace {

class LiveDataset {
 public:
  /// Epoch rebuild policy. A seal is triggered when the tail reaches
  /// max(min_rebuild_tail, rebuild_fraction * sealed records).
  struct Options {
    std::size_t min_rebuild_tail = 8192;
    double rebuild_fraction = 0.5;
  };

  LiveDataset();
  explicit LiveDataset(Options options);

  /// Seeds the sealed prefix from an existing dataset and derives the
  /// live posting lists from it.
  LiveDataset(FailureDataset seed, Options options);
  explicit LiveDataset(FailureDataset seed);

  /// Appends one record; may trigger a seal per the rebuild policy.
  /// Throws InvalidArgument on an inconsistent record (same rule as
  /// FailureDataset construction).
  void append(const FailureRecord& r);

  /// Pulls events from `source` until it reports idle/end or
  /// `max_events` have been appended. Returns the number appended.
  std::size_t drain(Source& source,
                    std::size_t max_events = static_cast<std::size_t>(-1));

  /// Forces an epoch rebuild now (no-op on an empty tail).
  void seal();

  /// The current sealed snapshot (tail records are *not* included; call
  /// seal() first for an up-to-the-last-append dataset). Never null.
  std::shared_ptr<const FailureDataset> snapshot() const;

  /// Number of seals performed (0 = nothing sealed yet).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  std::size_t sealed_size() const noexcept {
    return sealed_count_.load(std::memory_order_acquire);
  }
  /// Records appended but not yet sealed — the index epoch lag.
  std::size_t tail_size() const noexcept {
    return tail_count_.load(std::memory_order_acquire);
  }
  std::size_t size() const noexcept { return sealed_size() + tail_size(); }

  /// Wall-clock cost of the most recent seal, in milliseconds.
  double last_rebuild_ms() const noexcept { return last_rebuild_ms_; }

  /// Exact per-node interarrival gaps (seconds) over sealed + tail, from
  /// the live posting lists — no rebuild required. Writer-thread only.
  std::vector<double> node_interarrivals(int system_id, int node_id) const;

  /// Start times of one node, ascending, over sealed + tail. Empty when
  /// the node has no failures. Writer-thread only.
  const std::vector<Seconds>* node_starts(int system_id,
                                          int node_id) const noexcept;

 private:
  void publish(std::shared_ptr<const FailureDataset> next);
  void index_starts(const ColumnStore& columns);
  std::size_t seal_threshold() const noexcept;

  Options options_;
  ColumnStore tail_;  ///< arrival order, not yet merged
  std::map<std::pair<int, int>, std::vector<Seconds>> live_starts_;

  mutable std::mutex sealed_mutex_;  ///< guards sealed_ pointer swap only
  std::shared_ptr<const FailureDataset> sealed_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> sealed_count_{0};
  std::atomic<std::size_t> tail_count_{0};
  double last_rebuild_ms_ = 0.0;
  /// Lazy obs handle (resolved on first append so enabling obs after
  /// construction still counts); atomic mirrors DatasetIndex::view_hits_.
  mutable std::atomic<obs::Counter*> appends_counter_{nullptr};
};

}  // namespace hpcfail::trace
