#include "trace/ingest.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "trace/index.hpp"
#include "trace/merge.hpp"

namespace hpcfail::trace {

LiveDataset::LiveDataset() : LiveDataset(Options{}) {}

LiveDataset::LiveDataset(FailureDataset seed)
    : LiveDataset(std::move(seed), Options{}) {}

LiveDataset::LiveDataset(Options options) : options_(options) {
  HPCFAIL_EXPECTS(options_.min_rebuild_tail > 0,
                  "min_rebuild_tail must be positive");
  HPCFAIL_EXPECTS(options_.rebuild_fraction >= 0.0,
                  "rebuild_fraction must be non-negative");
  HPCFAIL_EXPECTS(options_.shards > 0, "shards must be positive");
  HPCFAIL_EXPECTS(options_.retain_seconds >= 0,
                  "retain_seconds must be non-negative");
  HPCFAIL_EXPECTS(options_.compaction_repair_floor > 0.0,
                  "compaction_repair_floor must be positive");
  shards_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  sealed_ = std::make_shared<const FailureDataset>();
}

LiveDataset::LiveDataset(FailureDataset seed, Options options)
    : LiveDataset(options) {
  index_starts(seed.columns());
  sealed_count_.store(seed.size(), std::memory_order_release);
  // Build the index on the shared instance (a move would drop it — the
  // dataset move ctor invalidates the source's index), so readers of the
  // first snapshot never trigger a lazy build.
  auto next = std::make_shared<const FailureDataset>(std::move(seed));
  next->index();
  publish(std::move(next));
}

void LiveDataset::index_starts(const ColumnStore& columns) {
  // Columns are globally start-sorted, so appending per (system, node)
  // keeps every posting list ascending. The seed lands in shard 0's
  // lists; queries merge across shards anyway.
  const std::size_t n = columns.size();
  for (std::size_t i = 0; i < n; ++i) {
    shards_[0]->starts[{columns.system_id[i], columns.node_id[i]}].push_back(
        columns.start[i]);
  }
}

std::size_t LiveDataset::seal_threshold() const noexcept {
  const auto scaled = static_cast<std::size_t>(
      options_.rebuild_fraction * static_cast<double>(sealed_size()));
  return std::max(options_.min_rebuild_tail, scaled);
}

void LiveDataset::append(std::size_t shard, const FailureRecord& r) {
  HPCFAIL_EXPECTS(shard < shards_.size(), "shard out of range");
  if (!r.is_consistent()) {
    throw InvalidArgument(
        "inconsistent failure record appended (end < start, bad ids, or "
        "cause/detail mismatch)");
  }
  Shard& s = *shards_[shard];
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.tail.push_back(r);
    std::vector<Seconds>& starts = s.starts[{r.system_id, r.node_id}];
    if (starts.empty() || starts.back() <= r.start) {
      starts.push_back(r.start);  // in-order arrival: the common case
    } else {
      starts.insert(std::upper_bound(starts.begin(), starts.end(), r.start),
                    r.start);
    }
  }
  const std::size_t tails =
      tail_count_.fetch_add(1, std::memory_order_acq_rel) + 1;

  if (obs::enabled()) {
    // Lazy handle, same scheme as DatasetIndex::count_view_hit().
    obs::Counter* counter = appends_counter_.load(std::memory_order_acquire);
    if (counter == nullptr) {
      counter = &obs::registry().counter("ingest.appends");
      appends_counter_.store(counter, std::memory_order_release);
    }
    counter->add(1);
  }

  if (tails >= seal_threshold()) maybe_seal();
}

std::size_t LiveDataset::drain(std::size_t shard, Source& source,
                               std::size_t max_events) {
  std::size_t appended = 0;
  FailureRecord r;
  while (appended < max_events && source.next(r) == SourceStatus::event) {
    append(shard, r);
    ++appended;
  }
  return appended;
}

void LiveDataset::maybe_seal() {
  // A seal already in flight will pick up late tails on the next
  // trigger; skipping keeps the append path wait-free under rebuilds.
  if (!seal_mutex_.try_lock()) return;
  if (tail_count_.load(std::memory_order_acquire) >= seal_threshold()) {
    do_seal();
  }
  seal_mutex_.unlock();
}

void LiveDataset::seal() {
  std::lock_guard<std::mutex> lock(seal_mutex_);
  do_seal();
}

void LiveDataset::do_seal() {
  // Swap every shard's tail out under its mutex; appends proceed into
  // fresh tails while this thread merges.
  std::vector<ColumnStore> tails(shards_.size());
  std::size_t moved = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mutex);
    if (!shards_[s]->tail.empty()) {
      tails[s] = std::exchange(shards_[s]->tail, ColumnStore{});
      moved += tails[s].size();
    }
  }
  if (moved == 0) return;
  tail_count_.fetch_sub(moved, std::memory_order_acq_rel);
  const auto t0 = std::chrono::steady_clock::now();

  // Stable radix merge of [sealed, tail 0, tail 1, ...]: equal keys
  // stay in part order (sealed first), which equals one stable sort of
  // the concatenation — so repeated seals commute with a single batch
  // build on the same data, at any shard count.
  const std::shared_ptr<const FailureDataset> sealed_ptr = snapshot();
  std::vector<MergeInput> parts;
  parts.reserve(1 + tails.size());
  parts.push_back({&sealed_ptr->columns(), {}});
  for (const ColumnStore& t : tails) {
    if (!t.empty()) parts.push_back({&t, {}});
  }
  const MergeKeySpec spec = merge_key_spec_for(parts);
  ColumnStore merged = merge_sorted(std::move(parts), spec);

  const std::size_t cut = retention_cut(merged);
  if (cut > 0) {
    compact_prefix(merged, cut);
    merged.drop_front(cut);
  }

  // Revalidates in one fused pass and adopts (the merge output is
  // sorted, so no AoS round trip happens). The index is built on the
  // shared instance *after* the move — the dataset move ctor drops the
  // source's index — and before the swap, so readers never block on it.
  auto next = std::make_shared<const FailureDataset>(
      FailureDataset::from_columns(std::move(merged)));
  next->index();

  sealed_count_.store(next->size(), std::memory_order_release);
  publish(std::move(next));
  epoch_.fetch_add(1, std::memory_order_acq_rel);

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  last_rebuild_ms_.store(
      std::chrono::duration<double, std::milli>(elapsed).count(),
      std::memory_order_release);
  if (obs::enabled()) {
    obs::registry().gauge("ingest.epoch")
        .set(static_cast<double>(epoch_.load(std::memory_order_acquire)));
    obs::registry().gauge("ingest.rebuild_ms").set(last_rebuild_ms());
    obs::registry().gauge("ingest.sealed_records")
        .set(static_cast<double>(sealed_size()));
  }
}

std::size_t LiveDataset::retention_cut(const ColumnStore& merged) const {
  if (merged.size() == 0) return 0;
  std::size_t cut = 0;
  if (options_.retain_seconds > 0) {
    const Seconds horizon = merged.start.back() - options_.retain_seconds;
    cut = static_cast<std::size_t>(
        std::lower_bound(merged.start.begin(), merged.start.end(), horizon) -
        merged.start.begin());
  }
  if (options_.max_sealed_events > 0 &&
      merged.size() > options_.max_sealed_events) {
    // Round the count cut down to the previous start boundary so the
    // dropped set is exactly {rows : start < boundary} — value-based,
    // so compaction commutes with re-partitioning and late arrivals.
    const std::size_t k = merged.size() - options_.max_sealed_events;
    const std::size_t cut_count = static_cast<std::size_t>(
        std::lower_bound(merged.start.begin(), merged.start.end(),
                         merged.start[k]) -
        merged.start.begin());
    cut = std::max(cut, cut_count);
  }
  return cut;
}

void LiveDataset::compact_prefix(const ColumnStore& merged, std::size_t cut) {
  {
    std::lock_guard<std::mutex> lock(compaction_mutex_);
    for (std::size_t i = 0; i < cut; ++i) {
      dist::SuffStats& cell = compacted_[{merged.system_id[i],
                                          merged.node_id[i],
                                          merged.cause[i]}];
      if (cell.n == 0) cell.floor_at = options_.compaction_repair_floor;
      cell.add(static_cast<double>(merged.end[i] - merged.start[i]) / 60.0);
    }
  }
  compacted_events_.fetch_add(cut, std::memory_order_acq_rel);
  const Seconds horizon = merged.start[cut];  // first retained start
  retention_horizon_.store(horizon, std::memory_order_release);

  // Drop posting-list entries below the horizon. Dropped rows are
  // exactly {start < horizon}, so each list loses a prefix.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->starts.begin(); it != shard->starts.end();) {
      std::vector<Seconds>& starts = it->second;
      const auto keep =
          std::lower_bound(starts.begin(), starts.end(), horizon);
      if (keep == starts.end()) {
        it = shard->starts.erase(it);
        continue;
      }
      starts.erase(starts.begin(), keep);
      ++it;
    }
  }

  if (obs::enabled()) {
    obs::Counter* counter =
        compactions_counter_.load(std::memory_order_acquire);
    if (counter == nullptr) {
      counter = &obs::registry().counter("ingest.compacted_events");
      compactions_counter_.store(counter, std::memory_order_release);
    }
    counter->add(cut);
  }
}

std::vector<CompactionCell> LiveDataset::compaction_cells() const {
  std::vector<CompactionCell> cells;
  std::lock_guard<std::mutex> lock(compaction_mutex_);
  cells.reserve(compacted_.size());
  for (const auto& [key, stats] : compacted_) {
    cells.push_back(
        {std::get<0>(key), std::get<1>(key), std::get<2>(key), stats});
  }
  return cells;
}

std::shared_ptr<const FailureDataset> LiveDataset::snapshot() const {
  std::lock_guard<std::mutex> lock(sealed_mutex_);
  return sealed_;
}

void LiveDataset::publish(std::shared_ptr<const FailureDataset> next) {
  std::lock_guard<std::mutex> lock(sealed_mutex_);
  sealed_ = std::move(next);
}

std::vector<Seconds> LiveDataset::node_starts(int system_id,
                                              int node_id) const {
  std::vector<Seconds> merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    const auto it = shard->starts.find({system_id, node_id});
    if (it == shard->starts.end()) continue;
    merged.insert(merged.end(), it->second.begin(), it->second.end());
  }
  // Each shard's list is ascending; the union is a k-way merge, and the
  // merged values are independent of shard order.
  std::sort(merged.begin(), merged.end());
  return merged;
}

std::vector<double> LiveDataset::node_interarrivals(int system_id,
                                                    int node_id) const {
  const std::vector<Seconds> starts = node_starts(system_id, node_id);
  std::vector<double> gaps;
  if (starts.size() >= 2) {
    gaps.reserve(starts.size() - 1);
    for (std::size_t i = 1; i < starts.size(); ++i) {
      gaps.push_back(static_cast<double>(starts[i] - starts[i - 1]));
    }
  }
  return gaps;
}

}  // namespace hpcfail::trace
