#include "trace/ingest.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "trace/index.hpp"

namespace hpcfail::trace {

namespace {

/// The dataset's canonical (start, system, node) order over column rows.
bool row_less(const ColumnStore& c, std::size_t a, std::size_t b) noexcept {
  if (c.start[a] != c.start[b]) return c.start[a] < c.start[b];
  if (c.system_id[a] != c.system_id[b]) return c.system_id[a] < c.system_id[b];
  return c.node_id[a] < c.node_id[b];
}

/// Cross-store comparison: row a of `x` strictly before row b of `y`.
bool row_less(const ColumnStore& x, std::size_t a, const ColumnStore& y,
              std::size_t b) noexcept {
  if (x.start[a] != y.start[b]) return x.start[a] < y.start[b];
  if (x.system_id[a] != y.system_id[b]) {
    return x.system_id[a] < y.system_id[b];
  }
  return x.node_id[a] < y.node_id[b];
}

}  // namespace

LiveDataset::LiveDataset() : LiveDataset(Options{}) {}

LiveDataset::LiveDataset(FailureDataset seed)
    : LiveDataset(std::move(seed), Options{}) {}

LiveDataset::LiveDataset(Options options) : options_(options) {
  HPCFAIL_EXPECTS(options_.min_rebuild_tail > 0,
                  "min_rebuild_tail must be positive");
  HPCFAIL_EXPECTS(options_.rebuild_fraction >= 0.0,
                  "rebuild_fraction must be non-negative");
  sealed_ = std::make_shared<const FailureDataset>();
}

LiveDataset::LiveDataset(FailureDataset seed, Options options)
    : LiveDataset(options) {
  index_starts(seed.columns());
  sealed_count_.store(seed.size(), std::memory_order_release);
  // Build the index on the shared instance (a move would drop it — the
  // dataset move ctor invalidates the source's index), so readers of the
  // first snapshot never trigger a lazy build.
  auto next = std::make_shared<const FailureDataset>(std::move(seed));
  next->index();
  publish(std::move(next));
}

void LiveDataset::index_starts(const ColumnStore& columns) {
  // Columns are globally start-sorted, so appending per (system, node)
  // keeps every posting list ascending.
  const std::size_t n = columns.size();
  for (std::size_t i = 0; i < n; ++i) {
    live_starts_[{columns.system_id[i], columns.node_id[i]}].push_back(
        columns.start[i]);
  }
}

std::size_t LiveDataset::seal_threshold() const noexcept {
  const auto scaled = static_cast<std::size_t>(
      options_.rebuild_fraction * static_cast<double>(sealed_size()));
  return std::max(options_.min_rebuild_tail, scaled);
}

void LiveDataset::append(const FailureRecord& r) {
  if (!r.is_consistent()) {
    throw InvalidArgument(
        "inconsistent failure record appended (end < start, bad ids, or "
        "cause/detail mismatch)");
  }
  tail_.push_back(r);
  tail_count_.store(tail_.size(), std::memory_order_release);

  std::vector<Seconds>& starts = live_starts_[{r.system_id, r.node_id}];
  if (starts.empty() || starts.back() <= r.start) {
    starts.push_back(r.start);  // in-order arrival: the common case
  } else {
    starts.insert(std::upper_bound(starts.begin(), starts.end(), r.start),
                  r.start);
  }

  if (obs::enabled()) {
    // Lazy handle, same scheme as DatasetIndex::count_view_hit().
    obs::Counter* counter = appends_counter_.load(std::memory_order_acquire);
    if (counter == nullptr) {
      counter = &obs::registry().counter("ingest.appends");
      appends_counter_.store(counter, std::memory_order_release);
    }
    counter->add(1);
  }

  if (tail_.size() >= seal_threshold()) seal();
}

std::size_t LiveDataset::drain(Source& source, std::size_t max_events) {
  std::size_t appended = 0;
  FailureRecord r;
  while (appended < max_events && source.next(r) == SourceStatus::event) {
    append(r);
    ++appended;
  }
  return appended;
}

void LiveDataset::seal() {
  if (tail_.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();

  // Stable sort of the tail (arrival order preserved on full-key ties)...
  std::vector<std::size_t> order(tail_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return row_less(tail_, a, b);
                   });

  // ...then a two-way merge with the sealed columns, sealed first on
  // ties. Together these equal one stable sort of sealed-then-tail, so
  // repeated seals commute with a single batch build on the same data.
  const std::shared_ptr<const FailureDataset> sealed_ptr = snapshot();
  const ColumnStore& sealed = sealed_ptr->columns();
  ColumnStore merged;
  merged.reserve(sealed.size() + tail_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sealed.size() && j < tail_.size()) {
    if (row_less(tail_, order[j], sealed, i)) {
      merged.push_row(tail_, order[j]);
      ++j;
    } else {
      merged.push_row(sealed, i);
      ++i;
    }
  }
  for (; i < sealed.size(); ++i) merged.push_row(sealed, i);
  for (; j < tail_.size(); ++j) merged.push_row(tail_, order[j]);

  // Revalidates in one fused pass and adopts (the merge output is
  // sorted, so no AoS round trip happens). The index is built on the
  // shared instance *after* the move — the dataset move ctor drops the
  // source's index — and before the swap, so readers never block on it.
  auto next = std::make_shared<const FailureDataset>(
      FailureDataset::from_columns(std::move(merged)));
  next->index();

  sealed_count_.store(next->size(), std::memory_order_release);
  tail_.clear();
  tail_count_.store(0, std::memory_order_release);
  publish(std::move(next));
  epoch_.fetch_add(1, std::memory_order_acq_rel);

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  last_rebuild_ms_ =
      std::chrono::duration<double, std::milli>(elapsed).count();
  if (obs::enabled()) {
    obs::registry().gauge("ingest.epoch")
        .set(static_cast<double>(epoch_.load(std::memory_order_acquire)));
    obs::registry().gauge("ingest.rebuild_ms").set(last_rebuild_ms_);
    obs::registry().gauge("ingest.sealed_records")
        .set(static_cast<double>(sealed_size()));
  }
}

std::shared_ptr<const FailureDataset> LiveDataset::snapshot() const {
  std::lock_guard<std::mutex> lock(sealed_mutex_);
  return sealed_;
}

void LiveDataset::publish(std::shared_ptr<const FailureDataset> next) {
  std::lock_guard<std::mutex> lock(sealed_mutex_);
  sealed_ = std::move(next);
}

const std::vector<Seconds>* LiveDataset::node_starts(
    int system_id, int node_id) const noexcept {
  const auto it = live_starts_.find({system_id, node_id});
  return it == live_starts_.end() ? nullptr : &it->second;
}

std::vector<double> LiveDataset::node_interarrivals(int system_id,
                                                    int node_id) const {
  const std::vector<Seconds>* starts = node_starts(system_id, node_id);
  std::vector<double> gaps;
  if (starts != nullptr && starts->size() >= 2) {
    gaps.reserve(starts->size() - 1);
    for (std::size_t i = 1; i < starts->size(); ++i) {
      gaps.push_back(static_cast<double>((*starts)[i] - (*starts)[i - 1]));
    }
  }
  return gaps;
}

}  // namespace hpcfail::trace
