// CSV ingest/export of failure datasets in a schema mirroring the public
// LANL release: one row per failure with system, node, start/end
// timestamps, workload, and root cause at both levels.
//
// Header: system,node,start,end,workload,cause,detail
// Timestamps are "YYYY-MM-DD HH:MM:SS" UTC. The reader validates every
// field and reports the line number of the first malformed row.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/dataset.hpp"

namespace hpcfail::trace {

/// The canonical header row.
extern const char* const kCsvHeader;

/// Writes the dataset (header + one row per record).
void write_csv(std::ostream& out, const FailureDataset& dataset);

/// Writes to a file; throws Error when the file cannot be opened.
void write_csv_file(const std::string& path, const FailureDataset& dataset);

/// Reads a dataset. Requires the canonical header. Throws ParseError with
/// line numbers on malformed rows and InvalidArgument on semantically
/// invalid records (via FailureDataset's constructor).
FailureDataset read_csv(std::istream& in);

/// Reads from a file; throws Error when the file cannot be opened.
FailureDataset read_csv_file(const std::string& path);

}  // namespace hpcfail::trace
