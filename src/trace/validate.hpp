// Dataset quality validation against the site catalog.
//
// Operator-entered failure data (Section 2.3) has known failure modes of
// its own: records outside a node's production window, overlapping repair
// intervals on one node, ids that don't exist, implausible durations.
// validate() audits a dataset and returns a structured report so ingest
// pipelines can decide what to reject, repair, or merely flag.
#pragma once

#include <string>
#include <vector>

#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::trace {

enum class ValidationIssueKind {
  unknown_system,        ///< system id not in the catalog
  node_out_of_range,     ///< node id outside the system's node count
  outside_production,    ///< failure starts outside the node's window
  overlapping_repair,    ///< starts while the same node is still down
  implausible_duration,  ///< repair longer than `max_repair_days`
  workload_mismatch,     ///< workload differs from the catalog's node role
};

std::string to_string(ValidationIssueKind kind);

struct ValidationIssue {
  ValidationIssueKind kind;
  std::size_t record_index = 0;  ///< index into dataset.records()
  std::string message;
};

struct ValidationOptions {
  double max_repair_days = 60.0;
  bool check_workloads = true;
};

struct ValidationReport {
  std::vector<ValidationIssue> issues;
  std::size_t records_checked = 0;

  bool clean() const noexcept { return issues.empty(); }
  std::size_t count(ValidationIssueKind kind) const noexcept;
};

/// Audits every record against the catalog. Never throws on dirty data --
/// the report is the result (empty dataset => clean report).
ValidationReport validate(const FailureDataset& dataset,
                          const SystemCatalog& catalog,
                          ValidationOptions options = {});

/// Copy of the dataset without the records named in `report` (the
/// standard "drop what validation flagged" ingest step).
FailureDataset drop_flagged(const FailureDataset& dataset,
                            const ValidationReport& report);

}  // namespace hpcfail::trace
