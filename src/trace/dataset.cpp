#include "trace/dataset.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "trace/index.hpp"

namespace hpcfail::trace {

namespace {
bool record_order(const FailureRecord& a, const FailureRecord& b) noexcept {
  if (a.start != b.start) return a.start < b.start;
  if (a.system_id != b.system_id) return a.system_id < b.system_id;
  return a.node_id < b.node_id;
}
}  // namespace

FailureDataset::FailureDataset(std::vector<FailureRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].is_consistent()) {
      throw InvalidArgument("inconsistent failure record at index " +
                            std::to_string(i) +
                            " (end < start, bad ids, or cause/detail "
                            "mismatch)");
    }
  }
  std::sort(records_.begin(), records_.end(), record_order);
}

FailureDataset::FailureDataset() = default;
FailureDataset::~FailureDataset() = default;

FailureDataset::FailureDataset(const FailureDataset& other)
    : records_(other.records_) {}

FailureDataset& FailureDataset::operator=(const FailureDataset& other) {
  if (this != &other) {
    records_ = other.records_;
    std::lock_guard<std::mutex> lock(index_mutex_);
    index_.reset();
  }
  return *this;
}

FailureDataset::FailureDataset(FailureDataset&& other) noexcept {
  // Hold the source's mutex so a concurrent index()/view() on it can't
  // observe the buffer mid-steal; its index holds spans into the buffer
  // we take, so drop it.
  std::lock_guard<std::mutex> lock(other.index_mutex_);
  records_ = std::move(other.records_);
  other.index_.reset();
}

FailureDataset& FailureDataset::operator=(FailureDataset&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(index_mutex_, other.index_mutex_);
    records_ = std::move(other.records_);
    index_.reset();
    other.index_.reset();
  }
  return *this;
}

const DatasetIndex& FailureDataset::index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (!index_) index_ = std::make_unique<DatasetIndex>(records_);
  return *index_;
}

DatasetView FailureDataset::view() const { return index().all(); }

FailureDataset FailureDataset::from_sorted(
    std::vector<FailureRecord> records) {
  FailureDataset out;
  out.records_ = std::move(records);
  return out;
}

Seconds FailureDataset::first_start() const {
  HPCFAIL_EXPECTS(!records_.empty(), "first_start of empty dataset");
  return records_.front().start;
}

Seconds FailureDataset::last_end() const {
  HPCFAIL_EXPECTS(!records_.empty(), "last_end of empty dataset");
  Seconds latest = records_.front().end;
  for (const FailureRecord& r : records_) latest = std::max(latest, r.end);
  return latest;
}

FailureDataset FailureDataset::filter(
    const std::function<bool(const FailureRecord&)>& keep) const {
  std::vector<FailureRecord> kept;
  for (const FailureRecord& r : records_) {
    if (keep(r)) kept.push_back(r);
  }
  return from_sorted(std::move(kept));  // already sorted and validated
}

std::vector<double> FailureDataset::repair_times_minutes() const {
  std::vector<double> times;
  times.reserve(records_.size());
  for (const FailureRecord& r : records_) {
    times.push_back(r.downtime_minutes());
  }
  return times;
}

std::vector<int> FailureDataset::system_ids() const {
  std::set<int> ids;
  for (const FailureRecord& r : records_) ids.insert(r.system_id);
  return {ids.begin(), ids.end()};
}

double FailureDataset::total_downtime_minutes() const noexcept {
  double total = 0.0;
  for (const FailureRecord& r : records_) total += r.downtime_minutes();
  return total;
}

}  // namespace hpcfail::trace
