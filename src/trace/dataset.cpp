#include "trace/dataset.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "trace/index.hpp"

namespace hpcfail::trace {

namespace {

bool record_order(const FailureRecord& a, const FailureRecord& b) noexcept {
  if (a.start != b.start) return a.start < b.start;
  if (a.system_id != b.system_id) return a.system_id < b.system_id;
  return a.node_id < b.node_id;
}

[[noreturn]] void throw_inconsistent(std::size_t index) {
  throw InvalidArgument("inconsistent failure record at index " +
                        std::to_string(index) +
                        " (end < start, bad ids, or cause/detail "
                        "mismatch)");
}

/// Fused columnar form of FailureRecord::is_consistent(): per-row checks
/// plus (start, system, node) sortedness, one streaming pass per column
/// group. Returns whether the columns are sorted; throws on the first
/// inconsistent row, reporting its index like the record constructor.
bool validate_columns(const ColumnStore& c) {
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (c.end[i] < c.start[i] || c.system_id[i] < 1 || c.node_id[i] < 0 ||
        category_of(c.detail[i]) != c.cause[i]) {
      throw_inconsistent(i);
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (c.start[i] != c.start[i - 1]) {
      if (c.start[i] < c.start[i - 1]) return false;
    } else if (c.system_id[i] != c.system_id[i - 1]) {
      if (c.system_id[i] < c.system_id[i - 1]) return false;
    } else if (c.node_id[i] < c.node_id[i - 1]) {
      return false;
    }
  }
  return true;
}

void record_bytes_gauge(const ColumnStore& columns) {
  if (obs::enabled()) {
    obs::registry().gauge("dataset.bytes")
        .set(static_cast<double>(columns.bytes()));
  }
}

}  // namespace

FailureDataset::FailureDataset(std::vector<FailureRecord> records) {
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].is_consistent()) {
      throw_inconsistent(i);
    }
  }
  std::sort(records.begin(), records.end(), record_order);
  columns_ = ColumnStore::from_records(records);
  record_bytes_gauge(columns_);
}

FailureDataset FailureDataset::from_columns(ColumnStore columns) {
  const bool sorted = validate_columns(columns);
  if (!sorted) {
    // Rare slow path (the generator always produces sorted columns):
    // permuting seven parallel arrays is simplest through records.
    std::vector<FailureRecord> records = columns.to_records();
    std::sort(records.begin(), records.end(), record_order);
    columns = ColumnStore::from_records(records);
  }
  FailureDataset out;
  out.columns_ = std::move(columns);
  record_bytes_gauge(out.columns_);
  return out;
}

FailureDataset::FailureDataset() = default;
FailureDataset::~FailureDataset() = default;

FailureDataset::FailureDataset(const FailureDataset& other)
    : columns_(other.columns_) {}

FailureDataset& FailureDataset::operator=(const FailureDataset& other) {
  if (this != &other) {
    columns_ = other.columns_;
    std::lock_guard<std::mutex> lock(index_mutex_);
    index_.reset();
  }
  return *this;
}

FailureDataset::FailureDataset(FailureDataset&& other) noexcept {
  // Hold the source's mutex so a concurrent index()/view() on it can't
  // observe the buffer mid-steal; its index holds views into the columns
  // we take, so drop it.
  std::lock_guard<std::mutex> lock(other.index_mutex_);
  columns_ = std::move(other.columns_);
  other.index_.reset();
}

FailureDataset& FailureDataset::operator=(FailureDataset&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(index_mutex_, other.index_mutex_);
    columns_ = std::move(other.columns_);
    index_.reset();
    other.index_.reset();
  }
  return *this;
}

const DatasetIndex& FailureDataset::index() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (!index_) index_ = std::make_unique<DatasetIndex>(columns_);
  return *index_;
}

DatasetView FailureDataset::view() const { return index().all(); }

FailureDataset FailureDataset::from_sorted_columns(ColumnStore columns) {
  FailureDataset out;
  out.columns_ = std::move(columns);
  return out;
}

Seconds FailureDataset::first_start() const {
  HPCFAIL_EXPECTS(!columns_.empty(), "first_start of empty dataset");
  return columns_.start.front();
}

Seconds FailureDataset::last_end() const {
  HPCFAIL_EXPECTS(!columns_.empty(), "last_end of empty dataset");
  Seconds latest = columns_.end.front();
  for (Seconds e : columns_.end) latest = std::max(latest, e);
  return latest;
}

FailureDataset FailureDataset::filter(
    const std::function<bool(const FailureRecord&)>& keep) const {
  ColumnStore kept;
  const std::size_t n = columns_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (keep(columns_.row(i))) kept.push_row(columns_, i);
  }
  return from_sorted_columns(std::move(kept));  // already sorted + validated
}

std::vector<double> FailureDataset::repair_times_minutes() const {
  // Fused unit conversion over the start/end columns; the record-level
  // downtime_minutes() helper stays for edge callers only. The division
  // stays a division so the values match the per-record path bit for bit.
  const std::size_t n = columns_.size();
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    times.push_back(
        static_cast<double>(columns_.end[i] - columns_.start[i]) / 60.0);
  }
  return times;
}

std::vector<int> FailureDataset::system_ids() const {
  std::set<int> ids;
  for (int id : columns_.system_id) ids.insert(id);
  return {ids.begin(), ids.end()};
}

double FailureDataset::total_downtime_minutes() const noexcept {
  double total = 0.0;
  const std::size_t n = columns_.size();
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<double>(columns_.end[i] - columns_.start[i]) / 60.0;
  }
  return total;
}

}  // namespace hpcfail::trace
