#include "trace/dataset.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace hpcfail::trace {

namespace {
bool record_order(const FailureRecord& a, const FailureRecord& b) noexcept {
  if (a.start != b.start) return a.start < b.start;
  if (a.system_id != b.system_id) return a.system_id < b.system_id;
  return a.node_id < b.node_id;
}
}  // namespace

FailureDataset::FailureDataset(std::vector<FailureRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (!records_[i].is_consistent()) {
      throw InvalidArgument("inconsistent failure record at index " +
                            std::to_string(i) +
                            " (end < start, bad ids, or cause/detail "
                            "mismatch)");
    }
  }
  std::sort(records_.begin(), records_.end(), record_order);
}

Seconds FailureDataset::first_start() const {
  HPCFAIL_EXPECTS(!records_.empty(), "first_start of empty dataset");
  return records_.front().start;
}

Seconds FailureDataset::last_end() const {
  HPCFAIL_EXPECTS(!records_.empty(), "last_end of empty dataset");
  Seconds latest = records_.front().end;
  for (const FailureRecord& r : records_) latest = std::max(latest, r.end);
  return latest;
}

FailureDataset FailureDataset::filter(
    const std::function<bool(const FailureRecord&)>& keep) const {
  std::vector<FailureRecord> kept;
  for (const FailureRecord& r : records_) {
    if (keep(r)) kept.push_back(r);
  }
  FailureDataset out;
  out.records_ = std::move(kept);  // already sorted and validated
  return out;
}

FailureDataset FailureDataset::for_system(int system_id) const {
  return filter([system_id](const FailureRecord& r) {
    return r.system_id == system_id;
  });
}

FailureDataset FailureDataset::between(Seconds from, Seconds to) const {
  return filter([from, to](const FailureRecord& r) {
    return r.start >= from && r.start < to;
  });
}

std::vector<double> FailureDataset::node_interarrivals(int system_id,
                                                       int node_id) const {
  std::vector<double> gaps;
  Seconds prev = 0;
  bool have_prev = false;
  for (const FailureRecord& r : records_) {
    if (r.system_id != system_id || r.node_id != node_id) continue;
    if (have_prev) {
      gaps.push_back(static_cast<double>(r.start - prev));
    }
    prev = r.start;
    have_prev = true;
  }
  return gaps;
}

std::vector<double> FailureDataset::system_interarrivals(
    int system_id) const {
  std::vector<double> gaps;
  Seconds prev = 0;
  bool have_prev = false;
  for (const FailureRecord& r : records_) {
    if (r.system_id != system_id) continue;
    if (have_prev) {
      gaps.push_back(static_cast<double>(r.start - prev));
    }
    prev = r.start;
    have_prev = true;
  }
  return gaps;
}

std::vector<double> FailureDataset::repair_times_minutes() const {
  std::vector<double> times;
  times.reserve(records_.size());
  for (const FailureRecord& r : records_) {
    times.push_back(r.downtime_minutes());
  }
  return times;
}

std::map<int, std::size_t> FailureDataset::failures_per_node(
    int system_id) const {
  std::map<int, std::size_t> counts;
  for (const FailureRecord& r : records_) {
    if (r.system_id == system_id) ++counts[r.node_id];
  }
  return counts;
}

std::vector<int> FailureDataset::system_ids() const {
  std::set<int> ids;
  for (const FailureRecord& r : records_) ids.insert(r.system_id);
  return {ids.begin(), ids.end()};
}

double FailureDataset::total_downtime_minutes() const noexcept {
  double total = 0.0;
  for (const FailureRecord& r : records_) total += r.downtime_minutes();
  return total;
}

}  // namespace hpcfail::trace
