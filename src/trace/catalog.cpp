#include "trace/catalog.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hpcfail::trace {

namespace {

// November 2005, the end of the released data ("now" in Table 1).
const Seconds kObservationEnd = to_epoch(2005, 11, 30);

Seconds ym(int year, int month) { return to_epoch(year, month, 1); }

NodeCategory cat(int first_node, int node_count, int procs_per_node,
                 double memory_gb, int nics, Seconds start, Seconds end) {
  return NodeCategory{first_node, node_count, procs_per_node,
                      memory_gb,  nics,       start, end};
}

// Single-category system helper.
SystemInfo sys1(int id, char hw, bool numa, int nodes, int procs_per_node,
                double mem_gb, int nics, Seconds start, Seconds end) {
  SystemInfo s;
  s.id = id;
  s.hw_type = hw;
  s.numa = numa;
  s.nodes = nodes;
  s.procs = nodes * procs_per_node;
  s.categories = {cat(0, nodes, procs_per_node, mem_gb, nics, start, end)};
  return s;
}

std::vector<SystemInfo> build_lanl_systems() {
  const Seconds end = kObservationEnd;
  std::vector<SystemInfo> v;
  v.reserve(22);

  // Small single-node early systems (types A-C).
  v.push_back(sys1(1, 'A', false, 1, 8, 16.0, 0, ym(1996, 6), ym(1999, 12)));
  v.push_back(sys1(2, 'B', false, 1, 32, 8.0, 1, ym(1996, 6), ym(2003, 12)));
  v.push_back(sys1(3, 'C', false, 1, 4, 1.0, 0, ym(1996, 6), ym(2003, 4)));

  // System 4: type D, the site's first large SMP cluster; a second batch
  // of nodes entered production in 12/2002.
  {
    SystemInfo s;
    s.id = 4;
    s.hw_type = 'D';
    s.numa = false;
    s.nodes = 164;
    s.procs = 328;
    s.categories = {cat(0, 128, 2, 1.0, 1, ym(2001, 4), end),
                    cat(128, 36, 2, 1.0, 1, ym(2002, 12), end)};
    v.push_back(s);
  }

  // Systems 5-12: type E 4-way SMP clusters. 5 and 6 were the first of
  // the type; 5 includes a pilot batch that ran 09/01-01/02 only.
  {
    SystemInfo s;
    s.id = 5;
    s.hw_type = 'E';
    s.numa = false;
    s.nodes = 256;
    s.procs = 1024;
    s.categories = {cat(0, 224, 4, 16.0, 2, ym(2001, 12), end),
                    cat(224, 32, 4, 16.0, 2, ym(2001, 9), ym(2002, 1))};
    v.push_back(s);
  }
  v.push_back(sys1(6, 'E', false, 128, 4, 8.0, 2, ym(2001, 12), end));
  v.push_back(sys1(7, 'E', false, 1024, 4, 16.0, 2, ym(2002, 5), end));
  v.push_back(sys1(8, 'E', false, 1024, 4, 32.0, 2, ym(2002, 5), end));
  v.push_back(sys1(9, 'E', false, 128, 4, 352.0, 2, ym(2002, 10), end));
  v.push_back(sys1(10, 'E', false, 128, 4, 8.0, 2, ym(2002, 10), end));
  v.push_back(sys1(11, 'E', false, 128, 4, 16.0, 2, ym(2002, 10), end));
  {
    // System 12: two categories differing only in memory (4 vs 16 GB),
    // the example called out in Section 2.1.
    SystemInfo s;
    s.id = 12;
    s.hw_type = 'E';
    s.numa = false;
    s.nodes = 32;
    s.procs = 128;
    s.categories = {cat(0, 16, 4, 4.0, 1, ym(2003, 9), end),
                    cat(16, 16, 4, 16.0, 1, ym(2003, 9), end)};
    v.push_back(s);
  }

  // Systems 13-18: type F 2-way SMP clusters, all commissioned 09/2003.
  v.push_back(sys1(13, 'F', false, 128, 2, 4.0, 1, ym(2003, 9), end));
  v.push_back(sys1(14, 'F', false, 256, 2, 4.0, 1, ym(2003, 9), end));
  v.push_back(sys1(15, 'F', false, 256, 2, 4.0, 1, ym(2003, 9), end));
  v.push_back(sys1(16, 'F', false, 256, 2, 4.0, 1, ym(2003, 9), end));
  v.push_back(sys1(17, 'F', false, 256, 2, 4.0, 1, ym(2003, 9), end));
  {
    // System 18 had a short-lived extra batch (03/05-06/05).
    SystemInfo s;
    s.id = 18;
    s.hw_type = 'F';
    s.numa = false;
    s.nodes = 512;
    s.procs = 1024;
    s.categories = {cat(0, 480, 2, 4.0, 1, ym(2003, 9), end),
                    cat(480, 32, 2, 4.0, 1, ym(2005, 3), ym(2005, 6))};
    v.push_back(s);
  }

  // Systems 19-21: type G, the first NUMA-era clusters (large
  // 128-processor nodes). 19 and 20 were the first anywhere to cluster so
  // many NUMA machines; 21 arrived about two years later.
  {
    SystemInfo s;
    s.id = 19;
    s.hw_type = 'G';
    s.numa = true;
    s.nodes = 16;
    s.procs = 2048;
    s.categories = {cat(0, 8, 128, 32.0, 4, ym(1996, 12), ym(2002, 9)),
                    cat(8, 8, 128, 64.0, 4, ym(1996, 12), ym(2002, 9))};
    v.push_back(s);
  }
  {
    // System 20: 48 long-lived 128-way nodes plus node 0, an 8-way node
    // in production only from 06/2005 (footnote 4 of the paper).
    SystemInfo s;
    s.id = 20;
    s.hw_type = 'G';
    s.numa = true;
    s.nodes = 49;
    s.procs = 6152;
    s.categories = {cat(0, 1, 8, 80.0, 0, ym(2005, 6), end),
                    cat(1, 48, 128, 128.0, 12, ym(1997, 1), end)};
    v.push_back(s);
  }
  {
    SystemInfo s;
    s.id = 21;
    s.hw_type = 'G';
    s.numa = true;
    s.nodes = 5;
    s.procs = 544;
    s.categories = {cat(0, 4, 128, 128.0, 4, ym(1998, 10), ym(2004, 12)),
                    cat(4, 1, 32, 16.0, 4, ym(1998, 10), ym(2004, 12))};
    v.push_back(s);
  }

  // System 22: type H, a single 256-way NUMA machine.
  v.push_back(sys1(22, 'H', true, 1, 256, 1024.0, 0, ym(2004, 11), end));
  return v;
}

}  // namespace

Seconds SystemInfo::production_start() const {
  HPCFAIL_ASSERT(!categories.empty());
  Seconds earliest = categories.front().production_start;
  for (const NodeCategory& c : categories) {
    earliest = std::min(earliest, c.production_start);
  }
  return earliest;
}

Seconds SystemInfo::production_end() const {
  HPCFAIL_ASSERT(!categories.empty());
  Seconds latest = categories.front().production_end;
  for (const NodeCategory& c : categories) {
    latest = std::max(latest, c.production_end);
  }
  return latest;
}

double SystemInfo::production_years() const {
  return years_between(production_start(), production_end());
}

const NodeCategory& SystemInfo::category_for_node(int node) const {
  HPCFAIL_EXPECTS(node >= 0 && node < nodes,
                  "node id outside system's node range");
  for (const NodeCategory& c : categories) {
    if (node >= c.first_node && node < c.first_node + c.node_count) return c;
  }
  throw LogicError("node categories do not tile the node range");
}

Workload SystemInfo::workload_of(int node) const {
  HPCFAIL_EXPECTS(node >= 0 && node < nodes,
                  "node id outside system's node range");
  // System 20's nodes 21-23 are the site's visualization nodes
  // (Section 5.1); the large SMP clusters (types E and F) dedicate node 0
  // as a front-end.
  if (id == 20 && node >= 21 && node <= 23) return Workload::graphics;
  if ((hw_type == 'E' || hw_type == 'F') && node == 0 && nodes > 1) {
    return Workload::frontend;
  }
  return Workload::compute;
}

SystemCatalog::SystemCatalog(std::vector<SystemInfo> systems)
    : systems_(std::move(systems)) {
  HPCFAIL_EXPECTS(!systems_.empty(), "catalog requires at least one system");
  for (const SystemInfo& s : systems_) {
    HPCFAIL_EXPECTS(s.id >= 1, "system ids must be >= 1");
    HPCFAIL_EXPECTS(!s.categories.empty(), "system without node categories");
    // Categories must tile [0, nodes) and processor counts must add up.
    std::vector<NodeCategory> cats = s.categories;
    std::sort(cats.begin(), cats.end(),
              [](const NodeCategory& a, const NodeCategory& b) {
                return a.first_node < b.first_node;
              });
    int next = 0;
    int procs = 0;
    for (const NodeCategory& c : cats) {
      HPCFAIL_EXPECTS(c.first_node == next,
                      "node categories must tile the node range");
      HPCFAIL_EXPECTS(c.node_count > 0, "empty node category");
      HPCFAIL_EXPECTS(c.production_start < c.production_end,
                      "category production window is empty");
      next += c.node_count;
      procs += c.node_count * c.procs_per_node;
    }
    HPCFAIL_EXPECTS(next == s.nodes, "category node counts do not add up");
    HPCFAIL_EXPECTS(procs == s.procs,
                    "category processor counts do not add up");
  }
}

const SystemCatalog& SystemCatalog::lanl() {
  static const SystemCatalog catalog{build_lanl_systems()};
  return catalog;
}

const SystemInfo& SystemCatalog::system(int id) const {
  for (const SystemInfo& s : systems_) {
    if (s.id == id) return s;
  }
  throw InvalidArgument("unknown system id " + std::to_string(id));
}

bool SystemCatalog::contains(int id) const noexcept {
  for (const SystemInfo& s : systems_) {
    if (s.id == id) return true;
  }
  return false;
}

std::vector<const SystemInfo*> SystemCatalog::systems_of_type(
    char hw_type) const {
  std::vector<const SystemInfo*> out;
  for (const SystemInfo& s : systems_) {
    if (s.hw_type == hw_type) out.push_back(&s);
  }
  return out;
}

std::vector<char> SystemCatalog::hardware_types() const {
  std::vector<char> types;
  for (const SystemInfo& s : systems_) {
    if (std::find(types.begin(), types.end(), s.hw_type) == types.end()) {
      types.push_back(s.hw_type);
    }
  }
  std::sort(types.begin(), types.end());
  return types;
}

int SystemCatalog::total_nodes() const noexcept {
  int total = 0;
  for (const SystemInfo& s : systems_) total += s.nodes;
  return total;
}

int SystemCatalog::total_procs() const noexcept {
  int total = 0;
  for (const SystemInfo& s : systems_) total += s.procs;
  return total;
}

Seconds SystemCatalog::observation_end() { return kObservationEnd; }

}  // namespace hpcfail::trace
