// Columnar (structure-of-arrays) failure-trace storage.
//
// Every analysis in the paper is a bulk scan over one flat failure table,
// and almost every scan touches one or two fields of each record — start
// times for interarrivals, start/end for repair, the cause byte for the
// root-cause breakdowns. The array-of-structs layout loads the full 32-byte
// record per touched field; the columnar layout below stores each field
// contiguously so a scan streams exactly the bytes it needs, categorical
// columns are one byte per record, and the numeric hot paths (interarrival
// extraction, fused repair-time conversion, windowed binary searches) run
// over dense arrays.
//
// ColumnStore owns the seven column vectors; ColumnsView is the non-owning
// window over a contiguous row range that replaces the old
// std::span<const FailureRecord> query surface. ColumnsView iterates and
// indexes as *values* of FailureRecord assembled on the fly, so existing
// row-oriented call sites (`for (const FailureRecord& r : ds.records())`,
// `records()[i]`) keep compiling unchanged; column-oriented callers use the
// typed spans (starts(), ends(), causes(), ...) directly. Reconstituting
// AoS records (to_records()/materialize()) happens only at the edges:
// CSV I/O, golden snapshots, and the differential test oracles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "trace/record.hpp"

namespace hpcfail::trace {

/// Owning SoA storage for failure records. The seven vectors always have
/// equal length; row i of the table is the i-th element of each. Members
/// are public so bulk writers (the trace generator, the index partition
/// builder) can fill columns directly; everything else should go through
/// FailureDataset / ColumnsView.
struct ColumnStore {
  std::vector<int> system_id;
  std::vector<int> node_id;
  std::vector<Seconds> start;
  std::vector<Seconds> end;
  std::vector<Workload> workload;
  std::vector<RootCause> cause;
  std::vector<DetailCause> detail;

  std::size_t size() const noexcept { return start.size(); }
  bool empty() const noexcept { return start.empty(); }

  void reserve(std::size_t n);
  void resize(std::size_t n);
  void clear() noexcept;

  /// Erases the first n rows of every column (the retention/compaction
  /// trim). Clamped to size().
  void drop_front(std::size_t n);

  /// Appends one record as a row.
  void push_back(const FailureRecord& r);

  /// Appends row i of `other` (no FailureRecord round trip).
  void push_row(const ColumnStore& other, std::size_t i);

  /// Row i reassembled as an AoS record.
  FailureRecord row(std::size_t i) const noexcept {
    FailureRecord r;
    r.system_id = system_id[i];
    r.node_id = node_id[i];
    r.start = start[i];
    r.end = end[i];
    r.workload = workload[i];
    r.cause = cause[i];
    r.detail = detail[i];
    return r;
  }

  /// Heap bytes held by the columns (capacity, i.e. the storage
  /// footprint exported through the obs gauge "dataset.bytes").
  std::size_t bytes() const noexcept;

  /// Columnarizes a record span, preserving order.
  static ColumnStore from_records(std::span<const FailureRecord> records);

  /// Reconstitutes rows [first, first + count) as AoS records — the
  /// edge-only bridge for CSV I/O, golden tests, and reference oracles.
  std::vector<FailureRecord> to_records(std::size_t first,
                                        std::size_t count) const;
  std::vector<FailureRecord> to_records() const {
    return to_records(0, size());
  }
};

/// Non-owning view of a contiguous row range [offset, offset + count) of a
/// ColumnStore. Copying a view copies a pointer and two indices. Views
/// borrow the store: they are invalidated when it is destroyed or mutated.
class ColumnsView {
 public:
  /// The empty view (no store, no rows).
  ColumnsView() = default;

  ColumnsView(const ColumnStore* store, std::size_t offset,
              std::size_t count) noexcept
      : store_(store), offset_(offset), count_(count) {}

  /// View of a whole store.
  explicit ColumnsView(const ColumnStore& store) noexcept
      : ColumnsView(&store, 0, store.size()) {}

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  /// Row i of the view, reassembled by value.
  FailureRecord operator[](std::size_t i) const noexcept {
    return store_->row(offset_ + i);
  }
  FailureRecord front() const noexcept { return (*this)[0]; }
  FailureRecord back() const noexcept { return (*this)[count_ - 1]; }

  /// Typed column spans over exactly this view's rows — the zero-copy
  /// surface the fused numeric passes consume. Empty views (including the
  /// default-constructed one, which has no store) yield empty spans.
  std::span<const int> system_ids() const noexcept {
    return count_ == 0 ? std::span<const int>{}
                       : std::span{store_->system_id.data() + offset_, count_};
  }
  std::span<const int> node_ids() const noexcept {
    return count_ == 0 ? std::span<const int>{}
                       : std::span{store_->node_id.data() + offset_, count_};
  }
  std::span<const Seconds> starts() const noexcept {
    return count_ == 0 ? std::span<const Seconds>{}
                       : std::span{store_->start.data() + offset_, count_};
  }
  std::span<const Seconds> ends() const noexcept {
    return count_ == 0 ? std::span<const Seconds>{}
                       : std::span{store_->end.data() + offset_, count_};
  }
  std::span<const Workload> workloads() const noexcept {
    return count_ == 0 ? std::span<const Workload>{}
                       : std::span{store_->workload.data() + offset_, count_};
  }
  std::span<const RootCause> causes() const noexcept {
    return count_ == 0 ? std::span<const RootCause>{}
                       : std::span{store_->cause.data() + offset_, count_};
  }
  std::span<const DetailCause> details() const noexcept {
    return count_ == 0 ? std::span<const DetailCause>{}
                       : std::span{store_->detail.data() + offset_, count_};
  }

  /// This view narrowed to rows [first, first + count) of itself.
  ColumnsView subview(std::size_t first, std::size_t count) const noexcept {
    return {store_, offset_ + first, count};
  }

  const ColumnStore* store() const noexcept { return store_; }
  std::size_t offset() const noexcept { return offset_; }

  /// Deep copy of the viewed rows into a standalone store.
  ColumnStore to_store() const;

  /// AoS copy of the viewed rows (edge-only, see ColumnStore).
  std::vector<FailureRecord> to_records() const {
    return store_ == nullptr ? std::vector<FailureRecord>{}
                             : store_->to_records(offset_, count_);
  }

  /// Random-access iterator yielding FailureRecord values. Dereferencing
  /// assembles the row on the fly; range-for with `const FailureRecord&`
  /// binds to the lifetime-extended temporary, so row-oriented loops read
  /// exactly as they did over a record span.
  class iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = FailureRecord;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = FailureRecord;

    iterator() = default;
    iterator(const ColumnStore* store, std::size_t pos) noexcept
        : store_(store), pos_(pos) {}

    FailureRecord operator*() const noexcept { return store_->row(pos_); }
    FailureRecord operator[](difference_type n) const noexcept {
      return store_->row(pos_ + static_cast<std::size_t>(n));
    }

    iterator& operator++() noexcept { ++pos_; return *this; }
    iterator operator++(int) noexcept { iterator t = *this; ++pos_; return t; }
    iterator& operator--() noexcept { --pos_; return *this; }
    iterator operator--(int) noexcept { iterator t = *this; --pos_; return t; }
    iterator& operator+=(difference_type n) noexcept {
      pos_ = static_cast<std::size_t>(static_cast<difference_type>(pos_) + n);
      return *this;
    }
    iterator& operator-=(difference_type n) noexcept { return *this += -n; }
    friend iterator operator+(iterator it, difference_type n) noexcept {
      return it += n;
    }
    friend iterator operator+(difference_type n, iterator it) noexcept {
      return it += n;
    }
    friend iterator operator-(iterator it, difference_type n) noexcept {
      return it -= n;
    }
    friend difference_type operator-(const iterator& a,
                                     const iterator& b) noexcept {
      return static_cast<difference_type>(a.pos_) -
             static_cast<difference_type>(b.pos_);
    }
    friend bool operator==(const iterator& a, const iterator& b) noexcept {
      return a.pos_ == b.pos_;
    }
    friend auto operator<=>(const iterator& a, const iterator& b) noexcept {
      return a.pos_ <=> b.pos_;
    }

   private:
    const ColumnStore* store_ = nullptr;
    std::size_t pos_ = 0;
  };

  iterator begin() const noexcept { return {store_, offset_}; }
  iterator end() const noexcept { return {store_, offset_ + count_}; }

 private:
  const ColumnStore* store_ = nullptr;
  std::size_t offset_ = 0;
  std::size_t count_ = 0;
};

}  // namespace hpcfail::trace
