// Stable multi-way merge of columnar record batches.
//
// Both the synthetic generator and the streaming-ingest seal path face
// the same problem: K independently produced columnar batches must
// become one store sorted by the dataset comparator (start, system,
// node), and the result must be bit-identical to a single stable sort
// of the concatenated input regardless of how the rows were
// partitioned. merge_sorted() is that primitive. It packs each row's
// (start, system, node) into a single integer key whose numeric order
// equals the comparator order, stable-LSD-radix-sorts (part, row)
// references by key, and gathers each column once in sorted order.
// Stability keeps equal keys in (part, emission) order, so the caller
// controls tie order purely by part order — the seal path passes the
// already-sorted sealed store as part 0 and the arrival-order shard
// tails after it, and gets the "sealed first on ties" contract for
// free. Catalogs whose key range does not pack into 64 bits fall back
// to a comparison stable_sort with identical output.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/columns.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace {

/// Layout of the packed (start, system, node) merge key, fixed before
/// keys are computed. The key orders exactly like the dataset's record
/// comparator, so a stable integer sort of the keys is the global
/// merge; equal keys stay in input order.
struct MergeKeySpec {
  Seconds base = 0;
  unsigned start_bits = 0;
  unsigned sys_bits = 0;
  unsigned node_bits = 0;
  bool packable = false;

  unsigned total_bits() const noexcept {
    return start_bits + sys_bits + node_bits;
  }

  std::uint64_t pack(Seconds start, int system, int node) const noexcept {
    return (static_cast<std::uint64_t>(start - base)
            << (sys_bits + node_bits)) |
           (static_cast<std::uint64_t>(system) << node_bits) |
           static_cast<std::uint64_t>(node);
  }
};

/// Builds a key spec covering the closed ranges [min_start, max_start],
/// [0, max_system], [0, max_node]. Returns packable=false when any id is
/// negative, the range is empty, or the packed key exceeds 64 bits.
MergeKeySpec make_merge_key_spec(Seconds min_start, Seconds max_start,
                                 std::int64_t max_system,
                                 std::int64_t max_node) noexcept;

/// One input batch: a borrowed column store (must outlive the merge
/// call) plus, optionally, the precomputed packed key of every row.
/// Producers that know the key spec up front (the generator) emit keys
/// alongside the columns; producers that do not (the ingest seal path)
/// leave `keys` empty and merge_sorted() computes them on the fly.
struct MergeInput {
  const ColumnStore* columns = nullptr;
  std::vector<std::uint64_t> keys;
};

/// Derives a key spec by scanning the parts' start/system/node columns.
MergeKeySpec merge_key_spec_for(const std::vector<MergeInput>& parts) noexcept;

/// Stable merge of the parts into one (start, system, node)-sorted
/// store. Equal keys stay in (part, row) order; the output is
/// bit-identical to one stable sort of the concatenation of the parts.
/// Consumes the parts' key vectors (they are scratch for the sort); the
/// borrowed column stores are left untouched.
ColumnStore merge_sorted(std::vector<MergeInput>&& parts,
                         const MergeKeySpec& spec);

/// Comparison-sort fallback with output identical to merge_sorted();
/// used when keys do not pack and exposed for differential tests.
ColumnStore merge_sorted_by_comparison(const std::vector<MergeInput>& parts);

}  // namespace hpcfail::trace
