// Table 1 of the paper, encoded: the 22 LANL systems with hardware type,
// node/processor counts, per-node-category configuration, and production
// windows. Every analysis that normalizes by size, production time, or
// hardware type reads this catalog.
//
// Data-entry note: the left half of Table 1 (ids, node and processor
// counts, hardware types, SMP/NUMA split) is unambiguous in the paper. The
// right half (node categories) is reconstructed from the paper's table and
// prose (e.g. system 12's 4 GB vs 16 GB split, system 20's node 0 entering
// production late); where the flattened table text leaves a category's
// owner ambiguous, the assignment documented in DESIGN.md is used. The
// synthetic generator and all analyses depend only on fields that are
// unambiguous.
#pragma once

#include <span>
#include <vector>

#include "common/time.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace {

/// A group of identically-configured nodes within one system.
struct NodeCategory {
  int first_node = 0;     ///< first node id in this category
  int node_count = 0;     ///< number of nodes
  int procs_per_node = 0;
  double memory_gb = 0.0;
  int nics = 0;
  Seconds production_start = 0;
  Seconds production_end = 0;  ///< observation end for still-running nodes
};

/// One of the 22 systems.
struct SystemInfo {
  int id = 0;          ///< 1..22
  char hw_type = '?';  ///< 'A'..'H' (processor/memory chip model)
  bool numa = false;   ///< systems 19-22; the rest are SMP
  int nodes = 0;
  int procs = 0;
  std::vector<NodeCategory> categories;

  /// Earliest category production start.
  Seconds production_start() const;
  /// Latest category production end.
  Seconds production_end() const;
  /// Production span in (fractional) years.
  double production_years() const;

  /// Category containing `node`. Throws InvalidArgument for ids outside
  /// [0, nodes).
  const NodeCategory& category_for_node(int node) const;

  /// Workload type a node runs: LANL's graphics nodes 21-23 on system 20,
  /// front-end node 0 on the larger clusters (types D-F), compute
  /// otherwise.
  Workload workload_of(int node) const;
};

/// The immutable site catalog.
class SystemCatalog {
 public:
  /// The LANL site of Table 1. Constructed once; thread-safe to read.
  static const SystemCatalog& lanl();

  std::span<const SystemInfo> systems() const noexcept { return systems_; }

  /// Throws InvalidArgument for ids outside 1..22.
  const SystemInfo& system(int id) const;

  /// True if `id` names a system in the catalog.
  bool contains(int id) const noexcept;

  /// All systems of one hardware type, in id order.
  std::vector<const SystemInfo*> systems_of_type(char hw_type) const;

  /// Hardware types present, in alphabetical order.
  std::vector<char> hardware_types() const;

  /// Total nodes / processors across the site (paper: 4750 and 24101).
  int total_nodes() const noexcept;
  int total_procs() const noexcept;

  /// End of the observation window (November 2005).
  static Seconds observation_end();

  /// Builds a custom catalog (for tests and what-if studies). Validates
  /// that node categories tile [0, nodes) and processor counts add up.
  explicit SystemCatalog(std::vector<SystemInfo> systems);

 private:
  std::vector<SystemInfo> systems_;
};

}  // namespace hpcfail::trace
