#include "trace/columns.hpp"

#include <algorithm>

namespace hpcfail::trace {

void ColumnStore::reserve(std::size_t n) {
  system_id.reserve(n);
  node_id.reserve(n);
  start.reserve(n);
  end.reserve(n);
  workload.reserve(n);
  cause.reserve(n);
  detail.reserve(n);
}

void ColumnStore::resize(std::size_t n) {
  system_id.resize(n);
  node_id.resize(n);
  start.resize(n);
  end.resize(n);
  workload.resize(n);
  cause.resize(n);
  detail.resize(n);
}

void ColumnStore::drop_front(std::size_t n) {
  n = std::min(n, size());
  if (n == 0) return;
  const auto cut = static_cast<std::ptrdiff_t>(n);
  system_id.erase(system_id.begin(), system_id.begin() + cut);
  node_id.erase(node_id.begin(), node_id.begin() + cut);
  start.erase(start.begin(), start.begin() + cut);
  end.erase(end.begin(), end.begin() + cut);
  workload.erase(workload.begin(), workload.begin() + cut);
  cause.erase(cause.begin(), cause.begin() + cut);
  detail.erase(detail.begin(), detail.begin() + cut);
}

void ColumnStore::clear() noexcept {
  system_id.clear();
  node_id.clear();
  start.clear();
  end.clear();
  workload.clear();
  cause.clear();
  detail.clear();
}

void ColumnStore::push_back(const FailureRecord& r) {
  system_id.push_back(r.system_id);
  node_id.push_back(r.node_id);
  start.push_back(r.start);
  end.push_back(r.end);
  workload.push_back(r.workload);
  cause.push_back(r.cause);
  detail.push_back(r.detail);
}

void ColumnStore::push_row(const ColumnStore& other, std::size_t i) {
  system_id.push_back(other.system_id[i]);
  node_id.push_back(other.node_id[i]);
  start.push_back(other.start[i]);
  end.push_back(other.end[i]);
  workload.push_back(other.workload[i]);
  cause.push_back(other.cause[i]);
  detail.push_back(other.detail[i]);
}

std::size_t ColumnStore::bytes() const noexcept {
  return system_id.capacity() * sizeof(int) +
         node_id.capacity() * sizeof(int) +
         start.capacity() * sizeof(Seconds) +
         end.capacity() * sizeof(Seconds) +
         workload.capacity() * sizeof(Workload) +
         cause.capacity() * sizeof(RootCause) +
         detail.capacity() * sizeof(DetailCause);
}

ColumnStore ColumnStore::from_records(std::span<const FailureRecord> records) {
  ColumnStore store;
  store.reserve(records.size());
  for (const FailureRecord& r : records) {
    store.push_back(r);
  }
  return store;
}

std::vector<FailureRecord> ColumnStore::to_records(std::size_t first,
                                                   std::size_t count) const {
  std::vector<FailureRecord> out;
  out.reserve(count);
  for (std::size_t i = first; i < first + count; ++i) {
    out.push_back(row(i));
  }
  return out;
}

ColumnStore ColumnsView::to_store() const {
  ColumnStore out;
  if (store_ == nullptr || count_ == 0) {
    return out;
  }
  const std::size_t lo = offset_;
  const std::size_t hi = offset_ + count_;
  out.system_id.assign(store_->system_id.begin() + lo,
                       store_->system_id.begin() + hi);
  out.node_id.assign(store_->node_id.begin() + lo,
                     store_->node_id.begin() + hi);
  out.start.assign(store_->start.begin() + lo, store_->start.begin() + hi);
  out.end.assign(store_->end.begin() + lo, store_->end.begin() + hi);
  out.workload.assign(store_->workload.begin() + lo,
                      store_->workload.begin() + hi);
  out.cause.assign(store_->cause.begin() + lo, store_->cause.begin() + hi);
  out.detail.assign(store_->detail.begin() + lo, store_->detail.begin() + hi);
  return out;
}

}  // namespace hpcfail::trace
