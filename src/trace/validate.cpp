#include "trace/validate.hpp"

#include <map>
#include <set>

#include "common/error.hpp"

namespace hpcfail::trace {

std::string to_string(ValidationIssueKind kind) {
  switch (kind) {
    case ValidationIssueKind::unknown_system: return "unknown_system";
    case ValidationIssueKind::node_out_of_range: return "node_out_of_range";
    case ValidationIssueKind::outside_production:
      return "outside_production";
    case ValidationIssueKind::overlapping_repair:
      return "overlapping_repair";
    case ValidationIssueKind::implausible_duration:
      return "implausible_duration";
    case ValidationIssueKind::workload_mismatch:
      return "workload_mismatch";
  }
  throw InvalidArgument("invalid ValidationIssueKind");
}

std::size_t ValidationReport::count(ValidationIssueKind kind) const noexcept {
  std::size_t total = 0;
  for (const ValidationIssue& issue : issues) {
    if (issue.kind == kind) ++total;
  }
  return total;
}

ValidationReport validate(const FailureDataset& dataset,
                          const SystemCatalog& catalog,
                          ValidationOptions options) {
  ValidationReport report;
  report.records_checked = dataset.size();
  const auto max_repair_seconds =
      static_cast<Seconds>(options.max_repair_days * kSecondsPerDay);

  // Latest repair end seen so far per (system, node); records are sorted
  // by start, so an overlap is simply start < previous end.
  std::map<std::pair<int, int>, Seconds> down_until;

  const auto records = dataset.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FailureRecord& r = records[i];
    const auto flag = [&](ValidationIssueKind kind, std::string message) {
      report.issues.push_back({kind, i, std::move(message)});
    };

    if (!catalog.contains(r.system_id)) {
      flag(ValidationIssueKind::unknown_system,
           "system " + std::to_string(r.system_id) +
               " is not in the catalog");
      continue;  // nothing else is checkable
    }
    const SystemInfo& sys = catalog.system(r.system_id);
    if (r.node_id >= sys.nodes) {
      flag(ValidationIssueKind::node_out_of_range,
           "node " + std::to_string(r.node_id) + " of system " +
               std::to_string(r.system_id) + " (has " +
               std::to_string(sys.nodes) + " nodes)");
      continue;
    }
    const NodeCategory& category = sys.category_for_node(r.node_id);
    if (r.start < category.production_start ||
        r.start >= category.production_end) {
      flag(ValidationIssueKind::outside_production,
           "failure at " + format_timestamp(r.start) +
               " outside the node's production window");
    }
    if (r.downtime_seconds() > max_repair_seconds) {
      flag(ValidationIssueKind::implausible_duration,
           "repair of " + std::to_string(r.downtime_seconds() /
                                         kSecondsPerDay) +
               " days exceeds the plausibility cap");
    }
    if (options.check_workloads &&
        r.workload != sys.workload_of(r.node_id)) {
      flag(ValidationIssueKind::workload_mismatch,
           "record says " + to_string(r.workload) + ", catalog says " +
               to_string(sys.workload_of(r.node_id)));
    }
    const auto key = std::make_pair(r.system_id, r.node_id);
    const auto it = down_until.find(key);
    if (it != down_until.end() && r.start < it->second) {
      flag(ValidationIssueKind::overlapping_repair,
           "failure starts while the node is still under repair until " +
               format_timestamp(it->second));
    }
    Seconds& until = down_until[key];
    until = std::max(until, r.end);
  }
  return report;
}

FailureDataset drop_flagged(const FailureDataset& dataset,
                            const ValidationReport& report) {
  std::set<std::size_t> drop;
  for (const ValidationIssue& issue : report.issues) {
    drop.insert(issue.record_index);
  }
  std::vector<FailureRecord> kept;
  const auto records = dataset.records();
  kept.reserve(records.size() - drop.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (drop.find(i) == drop.end()) kept.push_back(records[i]);
  }
  return FailureDataset(std::move(kept));
}

}  // namespace hpcfail::trace
