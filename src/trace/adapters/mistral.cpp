#include "trace/adapters/mistral.hpp"

#include <array>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"
#include "trace/adapters/token_map.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace::adapters {

namespace {

// kAllRootCauses order.
constexpr std::array<std::string_view, 6> kStateTokens = {
    "FAILED_HW", "FAILED_SW", "FAILED_NET", "FAILED_ENV", "FAILED_OP",
    "FAILED_UNK"};

// DetailCause declaration order.
constexpr std::array<std::string_view, 16> kReasonTokens = {
    "dimm",   "cpu",     "interconnect", "psu",      "disk", "hw_other",
    "kernel", "lustre",  "slurm",        "sw_other", "switch", "nic",
    "power",  "cooling", "operator",     "unknown"};

// Workload declaration order.
constexpr std::array<std::string_view, 3> kPartitionTokens = {
    "compute", "visual", "login"};

/// Parses "YYYY-MM-DDTHH:MM:SS" by rewriting the 'T' and delegating to
/// the native timestamp parser.
Seconds parse_iso_timestamp(std::string_view text) {
  if (text.size() != 19 || text[10] != 'T') {
    throw ParseError("bad timestamp '" + std::string(text) +
                     "' (want YYYY-MM-DDTHH:MM:SS)");
  }
  std::string spaced(text);
  spaced[10] = ' ';
  return parse_timestamp(spaced);
}

std::string format_iso_timestamp(Seconds t) {
  std::string text = format_timestamp(t);
  text[10] = 'T';
  return text;
}

/// Splits "<prefix><system><sep><node>" host-style ids.
void parse_ids(std::string_view text, char prefix, char sep,
               std::string_view what, int& system_id, int& node_id) {
  const auto bad = [&]() -> ParseError {
    return ParseError("bad " + std::string(what) + " '" + std::string(text) +
                      "' (want " + prefix + "<system>" + sep + "<node>)");
  };
  if (text.size() < 4 || text.front() != prefix) throw bad();
  const std::size_t at = text.find(sep, 1);
  if (at == std::string_view::npos || at + 1 >= text.size()) throw bad();
  system_id = static_cast<int>(parse_i64(text.substr(1, at - 1)));
  node_id = static_cast<int>(parse_i64(text.substr(at + 1)));
}

}  // namespace

std::string MistralAdapter::format_line(const FailureRecord& record) const {
  std::string line = "j";
  line += std::to_string(record.system_id);
  line += '-';
  line += std::to_string(record.node_id);
  line += ",m";
  line += std::to_string(record.system_id);
  line += 'n';
  line += std::to_string(record.node_id);
  line += ',';
  line += format_iso_timestamp(record.start);
  line += ',';
  line += format_iso_timestamp(record.end);
  line += ',';
  line += token_for(kStateTokens, cause_index(record.cause));
  line += ',';
  line += token_for(kReasonTokens, static_cast<std::size_t>(record.detail));
  line += ',';
  line += token_for(kPartitionTokens,
                    static_cast<std::size_t>(record.workload));
  return line;
}

FailureRecord MistralAdapter::parse_line(std::string_view line) const {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string> fields = split(line, ',');
  if (fields.size() != 7) {
    throw ParseError("expected 7 comma-separated fields, got " +
                     std::to_string(fields.size()));
  }
  FailureRecord record;
  parse_ids(fields[1], 'm', 'n', "host", record.system_id, record.node_id);
  int job_system = 0;
  int job_node = 0;
  parse_ids(fields[0], 'j', '-', "job_id", job_system, job_node);
  if (job_system != record.system_id || job_node != record.node_id) {
    throw ValidationError("job_id '" + fields[0] +
                          "' does not match host '" + fields[1] + "'");
  }
  record.start = parse_iso_timestamp(fields[2]);
  record.end = parse_iso_timestamp(fields[3]);
  record.cause =
      kAllRootCauses[index_of_token(kStateTokens, fields[4], "state")];
  record.detail = static_cast<DetailCause>(
      index_of_token(kReasonTokens, fields[5], "reason"));
  record.workload = static_cast<Workload>(
      index_of_token(kPartitionTokens, fields[6], "partition"));
  validate_adapted(record);
  return record;
}

}  // namespace hpcfail::trace::adapters
