// Multi-site trace adapters: bijective mappings between FailureRecord and
// the on-disk/wire schemas of other public HPC failure studies (ROADMAP
// item 4). Every adapter formats a record as exactly one line and parses
// one line back; format_line/parse_line are exact inverses, so a native
// record survives a round trip through any foreign schema bit-identically
// (the testkit property battery pins this per adapter).
//
// Error taxonomy: parse_line throws ParseError for malformed lines (wrong
// field count, bad numbers or timestamps, unknown vocabulary tokens) and
// ValidationError for well-formed lines that fail semantic checks (repair
// interval ending before it starts, cause/detail category mismatch,
// redundant fields that disagree). Streaming ingest (LineSource with an
// adapter, `hpcfail serve --format <name>`) flattens both into
// reject-and-count; the strict batch path (read_adapter_file) adds a
// "line N:" prefix and rethrows the same type.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "trace/dataset.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace hpcfail::trace {

/// One foreign trace schema: a named, line-oriented, bijective encoding
/// of FailureRecord. Implementations are stateless immutable singletons
/// (see all_adapters()), safe to share across threads.
class Adapter {
 public:
  virtual ~Adapter() = default;

  /// Registry key ("lu", "mistral", "tan") — also the CLI --format value.
  virtual std::string_view name() const noexcept = 0;

  /// One-line human description with the source study.
  virtual std::string_view description() const noexcept = 0;

  /// Banner/header line written at the top of the format's files and
  /// skipped silently on ingest. Empty when the format has none.
  virtual std::string_view header() const noexcept = 0;

  /// Renders one record as one line (no trailing newline). Total: every
  /// consistent record is representable.
  virtual std::string format_line(const FailureRecord& record) const = 0;

  /// Parses one line (trailing '\r' already stripped by callers is also
  /// tolerated here). Exact inverse of format_line on its image. Throws
  /// ParseError / ValidationError per the taxonomy above.
  virtual FailureRecord parse_line(std::string_view line) const = 0;
};

/// Every registered adapter, ascending by name. Immutable singletons.
std::span<const Adapter* const> all_adapters() noexcept;

/// The registered names joined with ", " (for --help and error messages).
std::string adapter_names();

/// Looks an adapter up by name. Throws ValidationError listing the known
/// names on a miss.
const Adapter& adapter_for(std::string_view name);

/// Semantic checks shared by every adapter's parse path: positive system
/// id, non-negative node id, end >= start, detail belonging to the
/// cause's category. Throws ValidationError with a field-specific
/// message.
void validate_adapted(const FailureRecord& record);

/// Strict/lenient batch source over an istream of adapter-format lines —
/// the foreign-schema analogue of CsvSource. Blank lines and lines equal
/// to the adapter's header are skipped silently; next() never returns
/// `idle`. With OnError::throw_, parse failures rethrow their original
/// type (ParseError or ValidationError) prefixed with "line N:"; with
/// OnError::reject they are counted into counters().
class AdapterSource : public Source {
 public:
  enum class OnError { throw_, reject };

  /// `in` and `adapter` must outlive the source.
  AdapterSource(std::istream& in, const Adapter& adapter,
                OnError on_error = OnError::throw_);

  SourceStatus next(FailureRecord& out) override;

 private:
  std::istream& in_;
  const Adapter& adapter_;
  OnError on_error_;
  std::size_t line_number_ = 0;
  std::string line_;
};

/// Writes the dataset in the adapter's format (header line when the
/// format has one, then one line per record).
void write_adapter(std::ostream& out, const FailureDataset& dataset,
                   const Adapter& adapter);

/// Writes to a file; throws IoError when the file cannot be opened.
void write_adapter_file(const std::string& path,
                        const FailureDataset& dataset,
                        const Adapter& adapter);

/// Reads a foreign-format trace file. With `counters == nullptr` the
/// first malformed line throws (ParseError/ValidationError with a "line
/// N:" prefix); otherwise malformed lines are rejected-and-counted into
/// `*counters` and the clean records returned. Throws IoError when the
/// file cannot be opened.
FailureDataset read_adapter_file(const std::string& path,
                                 const Adapter& adapter,
                                 SourceCounters* counters = nullptr);

}  // namespace hpcfail::trace
