#include "trace/adapters/adapter.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "trace/adapters/lu.hpp"
#include "trace/adapters/mistral.hpp"
#include "trace/adapters/tan.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace {

std::span<const Adapter* const> all_adapters() noexcept {
  static const adapters::LuAdapter lu;
  static const adapters::MistralAdapter mistral;
  static const adapters::TanAdapter tan;
  // Name-ascending so listings and error messages are stable.
  static const Adapter* const kAll[] = {&lu, &mistral, &tan};
  return kAll;
}

std::string adapter_names() {
  std::string joined;
  for (const Adapter* adapter : all_adapters()) {
    if (!joined.empty()) joined += ", ";
    joined += adapter->name();
  }
  return joined;
}

const Adapter& adapter_for(std::string_view name) {
  for (const Adapter* adapter : all_adapters()) {
    if (adapter->name() == name) return *adapter;
  }
  throw ValidationError("unknown trace format '" + std::string(name) +
                        "' (known formats: " + adapter_names() + ")");
}

void validate_adapted(const FailureRecord& record) {
  if (record.system_id < 1 || record.node_id < 0) {
    throw ValidationError("system id must be >= 1 and node id >= 0 (got " +
                          std::to_string(record.system_id) + ", " +
                          std::to_string(record.node_id) + ")");
  }
  if (record.end < record.start) {
    throw ValidationError("repair interval ends before it starts");
  }
  if (category_of(record.detail) != record.cause) {
    throw ValidationError("detail cause '" + to_string(record.detail) +
                          "' does not belong to category '" +
                          to_string(record.cause) + "'");
  }
}

AdapterSource::AdapterSource(std::istream& in, const Adapter& adapter,
                             OnError on_error)
    : in_(in), adapter_(adapter), on_error_(on_error) {}

SourceStatus AdapterSource::next(FailureRecord& out) {
  while (std::getline(in_, line_)) {
    ++line_number_;
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();
    const std::string stripped = trim(line_);
    if (stripped.empty() || stripped == adapter_.header()) continue;
    try {
      out = adapter_.parse_line(line_);
      ++counters_.accepted;
      return SourceStatus::event;
    } catch (const ParseError& e) {
      const std::string message =
          "line " + std::to_string(line_number_) + ": " + e.what();
      if (on_error_ == OnError::throw_) throw ParseError(message);
      ++counters_.rejected;
      counters_.last_error = message;
    } catch (const ValidationError& e) {
      const std::string message =
          "line " + std::to_string(line_number_) + ": " + e.what();
      if (on_error_ == OnError::throw_) throw ValidationError(message);
      ++counters_.rejected;
      counters_.last_error = message;
    }
  }
  return SourceStatus::end;
}

void write_adapter(std::ostream& out, const FailureDataset& dataset,
                   const Adapter& adapter) {
  if (!adapter.header().empty()) out << adapter.header() << '\n';
  for (const FailureRecord& record : dataset.records()) {
    out << adapter.format_line(record) << '\n';
  }
}

void write_adapter_file(const std::string& path,
                        const FailureDataset& dataset,
                        const Adapter& adapter) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  write_adapter(out, dataset, adapter);
  if (!out) throw IoError("write failed for '" + path + "'");
}

FailureDataset read_adapter_file(const std::string& path,
                                 const Adapter& adapter,
                                 SourceCounters* counters) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  AdapterSource source(in, adapter,
                       counters == nullptr ? AdapterSource::OnError::throw_
                                           : AdapterSource::OnError::reject);
  std::vector<FailureRecord> records;
  FailureRecord record;
  while (source.next(record) == SourceStatus::event) {
    records.push_back(record);
  }
  if (counters != nullptr) *counters = source.counters();
  return FailureDataset(std::move(records));
}

}  // namespace hpcfail::trace
