// Mistral job-history row format (Zasadzinski et al., "Early Termination
// of Failed HPC Jobs Through Machine Learning" / Mistral supercomputer
// job-history analysis, arXiv:1801.07624): one CSV row per failed job
// with ISO-8601 'T' timestamps and a slurm-flavoured vocabulary:
//
//   job_id,host,begin,end,state,reason,partition
//   j2-17,m2n17,2017-06-01T04:10:00,2017-06-01T06:40:00,FAILED_HW,dimm,compute
//
// `job_id` is derived from the host ("j<system>-<node>") and must agree
// with it (a mismatch is a ValidationError). `state` carries the failure
// category (FAILED_HW/SW/NET/ENV/OP/UNK), `reason` the detailed cause,
// and `partition` (compute/visual/login) the workload class. Files open
// with the column-name CSV header.
#pragma once

#include "trace/adapters/adapter.hpp"

namespace hpcfail::trace::adapters {

class MistralAdapter final : public Adapter {
 public:
  std::string_view name() const noexcept override { return "mistral"; }
  std::string_view description() const noexcept override {
    return "Mistral job-history failure rows (Zasadzinski et al., "
           "arXiv:1801.07624)";
  }
  std::string_view header() const noexcept override {
    return "job_id,host,begin,end,state,reason,partition";
  }
  std::string format_line(const FailureRecord& record) const override;
  FailureRecord parse_line(std::string_view line) const override;
};

}  // namespace hpcfail::trace::adapters
