// Tan & DeBardeleben's contemporary LANL-style release format ("Failure
// Analysis and Quantification for Contemporary and Future
// Supercomputers", arXiv:1911.02118): pipe-separated interrupt records
// with US-style wall-clock timestamps and an explicit (redundant)
// duration column, as in the contemporary LANL operational releases:
//
//   <system>|<node>|<down MM/DD/YYYY HH:MM:SS>|<up MM/DD/YYYY HH:MM:SS>|
//   <duration seconds>|<Category>|<Subcategory>|<Workload>
//
// e.g.  2|17|06/01/2016 04:10:00|06/01/2016 06:40:00|9000|Hardware|DIMM|Compute
//
// The duration column must agree with up-down (a mismatch is a
// ValidationError — the redundancy is the format's own consistency
// check). Files open with a column-title header line.
#pragma once

#include "trace/adapters/adapter.hpp"

namespace hpcfail::trace::adapters {

class TanAdapter final : public Adapter {
 public:
  std::string_view name() const noexcept override { return "tan"; }
  std::string_view description() const noexcept override {
    return "contemporary LANL-style interrupt records (Tan & DeBardeleben, "
           "arXiv:1911.02118)";
  }
  std::string_view header() const noexcept override {
    return "System|Node|Down Time|Up Time|Duration Sec|Category|"
           "Subcategory|Workload";
  }
  std::string format_line(const FailureRecord& record) const override;
  FailureRecord parse_line(std::string_view line) const override;
};

}  // namespace hpcfail::trace::adapters
