// Internal helpers shared by the concrete adapters: bijective token
// vocabularies over the record enums. Each adapter declares one
// std::array of tokens per axis, ordered like the enum (kAllRootCauses
// order for causes, declaration order for DetailCause and Workload), and
// converts through these two functions so format/parse stay exact
// inverses by construction.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace hpcfail::trace::adapters {

/// Token for enum index `index`. The tables are adapter-authored and
/// index is derived from a valid enum, so this never fails.
inline std::string_view token_for(std::span<const std::string_view> table,
                                  std::size_t index) noexcept {
  return table[index];
}

/// Enum index of `token`, or ParseError naming the axis on a miss.
/// Linear scan: the largest table has 16 entries.
inline std::size_t index_of_token(std::span<const std::string_view> table,
                                  std::string_view token,
                                  std::string_view axis) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table[i] == token) return i;
  }
  throw ParseError("unknown " + std::string(axis) + " token '" +
                   std::string(token) + "'");
}

}  // namespace hpcfail::trace::adapters
