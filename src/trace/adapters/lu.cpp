#include "trace/adapters/lu.hpp"

#include <array>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "trace/adapters/token_map.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace::adapters {

namespace {

// kAllRootCauses order.
constexpr std::array<std::string_view, 6> kCauseTokens = {
    "HW", "SW", "NET", "ENV", "HUM", "UNK"};

// DetailCause declaration order.
constexpr std::array<std::string_view, 16> kDetailTokens = {
    "mem",    "cpu", "ic",     "psu", "disk",  "hw",
    "os",     "pfs", "sched",  "sw",  "switch", "nic",
    "outage", "ac",  "oper",   "unk"};

// Workload declaration order (compute, graphics, frontend).
constexpr std::array<std::string_view, 3> kWorkloadTokens = {"comp", "grfx",
                                                             "fe"};

/// Splits "c<system>n<node>" into its two ids.
void parse_node_path(std::string_view path, FailureRecord& record) {
  if (path.size() < 4 || path.front() != 'c') {
    throw ParseError("bad node path '" + std::string(path) +
                     "' (want c<system>n<node>)");
  }
  const std::size_t n = path.find('n', 1);
  if (n == std::string_view::npos || n + 1 >= path.size()) {
    throw ParseError("bad node path '" + std::string(path) +
                     "' (want c<system>n<node>)");
  }
  record.system_id = static_cast<int>(parse_i64(path.substr(1, n - 1)));
  record.node_id = static_cast<int>(parse_i64(path.substr(n + 1)));
}

}  // namespace

std::string LuAdapter::format_line(const FailureRecord& record) const {
  std::string line = std::to_string(record.start);
  line += " c";
  line += std::to_string(record.system_id);
  line += 'n';
  line += std::to_string(record.node_id);
  line += " NODE_FAIL ";
  line += std::to_string(record.end - record.start);
  line += "s ";
  line += token_for(kWorkloadTokens, static_cast<std::size_t>(record.workload));
  line += ' ';
  line += token_for(kCauseTokens, cause_index(record.cause));
  line += '/';
  line += token_for(kDetailTokens, static_cast<std::size_t>(record.detail));
  return line;
}

FailureRecord LuAdapter::parse_line(std::string_view line) const {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string> fields = split(line, ' ');
  if (fields.size() != 6) {
    throw ParseError("expected 6 space-separated fields, got " +
                     std::to_string(fields.size()));
  }
  if (fields[2] != "NODE_FAIL") {
    throw ParseError("unsupported event type '" + fields[2] + "'");
  }
  if (fields[3].empty() || fields[3].back() != 's') {
    throw ParseError("bad downtime '" + fields[3] + "' (want <seconds>s)");
  }
  FailureRecord record;
  record.start = static_cast<Seconds>(parse_i64(fields[0]));
  parse_node_path(fields[1], record);
  const std::int64_t downtime = parse_i64(
      std::string_view(fields[3]).substr(0, fields[3].size() - 1));
  if (downtime < 0) throw ValidationError("negative downtime");
  record.end = record.start + downtime;
  record.workload = static_cast<Workload>(
      index_of_token(kWorkloadTokens, fields[4], "workload"));
  const std::size_t slash = fields[5].find('/');
  if (slash == std::string::npos) {
    throw ParseError("bad cause '" + fields[5] + "' (want <CAT>/<sub>)");
  }
  const std::string_view cause_field(fields[5]);
  record.cause = kAllRootCauses[index_of_token(
      kCauseTokens, cause_field.substr(0, slash), "cause")];
  record.detail = static_cast<DetailCause>(index_of_token(
      kDetailTokens, cause_field.substr(slash + 1), "detail cause"));
  validate_adapted(record);
  return record;
}

}  // namespace hpcfail::trace::adapters
