// Lu's commodity-cluster failure-log format (Lu, "Failure Data Analysis
// of HPC Systems", arXiv:1302.4779): syslog-style single-line node-down
// events from 8-24-month commodity-cluster logs. One space-separated
// line per failure:
//
//   <epoch> c<system>n<node> NODE_FAIL <downtime>s <workload> <CAT>/<sub>
//
// e.g.  1275350400 c1n42 NODE_FAIL 5400s comp HW/mem
//
// <epoch> is the failure start in Unix seconds, <downtime> the repair
// time in whole seconds, <CAT> one of HW/SW/NET/ENV/HUM/UNK and <sub> the
// detailed-cause token (mem, cpu, ic, psu, disk, hw, os, pfs, sched, sw,
// switch, nic, outage, ac, oper, unk). Files open with a "#" banner line.
#pragma once

#include "trace/adapters/adapter.hpp"

namespace hpcfail::trace::adapters {

class LuAdapter final : public Adapter {
 public:
  std::string_view name() const noexcept override { return "lu"; }
  std::string_view description() const noexcept override {
    return "commodity-cluster node failure log (Lu, arXiv:1302.4779)";
  }
  std::string_view header() const noexcept override {
    return "# lu commodity-cluster node failure log v1";
  }
  std::string format_line(const FailureRecord& record) const override;
  FailureRecord parse_line(std::string_view line) const override;
};

}  // namespace hpcfail::trace::adapters
