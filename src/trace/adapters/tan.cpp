#include "trace/adapters/tan.hpp"

#include <array>
#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/time.hpp"
#include "trace/adapters/token_map.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace::adapters {

namespace {

// kAllRootCauses order. The release spells the unknown category
// "Undetermined" at both levels.
constexpr std::array<std::string_view, 6> kCauseTokens = {
    "Hardware", "Software", "Network", "Environment", "Human",
    "Undetermined"};

// DetailCause declaration order.
constexpr std::array<std::string_view, 16> kDetailTokens = {
    "DIMM",         "CPU",        "Interconnect", "Power Supply",
    "Disk",         "Other HW",   "OS",           "Parallel FS",
    "Scheduler",    "Other SW",   "Switch",       "NIC",
    "Power Outage", "AC Failure", "Operator",     "Undetermined"};

// Workload declaration order.
constexpr std::array<std::string_view, 3> kWorkloadTokens = {
    "Compute", "Graphics", "Frontend"};

/// Parses "MM/DD/YYYY HH:MM:SS". ParseError on any malformed or
/// out-of-range field (calendar validation included).
Seconds parse_us_timestamp(std::string_view text) {
  const auto bad = [&]() -> ParseError {
    return ParseError("bad timestamp '" + std::string(text) +
                      "' (want MM/DD/YYYY HH:MM:SS)");
  };
  if (text.size() != 19 || text[2] != '/' || text[5] != '/' ||
      text[10] != ' ' || text[13] != ':' || text[16] != ':') {
    throw bad();
  }
  CivilDateTime cdt;
  try {
    cdt.month = static_cast<int>(parse_i64(text.substr(0, 2)));
    cdt.day = static_cast<int>(parse_i64(text.substr(3, 2)));
    cdt.year = static_cast<int>(parse_i64(text.substr(6, 4)));
    cdt.hour = static_cast<int>(parse_i64(text.substr(11, 2)));
    cdt.minute = static_cast<int>(parse_i64(text.substr(14, 2)));
    cdt.second = static_cast<int>(parse_i64(text.substr(17, 2)));
    return to_epoch(cdt);
  } catch (const Error&) {
    throw bad();
  }
}

std::string format_us_timestamp(Seconds t) {
  const CivilDateTime cdt = from_epoch(t);
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%02d/%02d/%04d %02d:%02d:%02d",
                cdt.month, cdt.day, cdt.year, cdt.hour, cdt.minute,
                cdt.second);
  return buffer;
}

}  // namespace

std::string TanAdapter::format_line(const FailureRecord& record) const {
  std::string line = std::to_string(record.system_id);
  line += '|';
  line += std::to_string(record.node_id);
  line += '|';
  line += format_us_timestamp(record.start);
  line += '|';
  line += format_us_timestamp(record.end);
  line += '|';
  line += std::to_string(record.end - record.start);
  line += '|';
  line += token_for(kCauseTokens, cause_index(record.cause));
  line += '|';
  line += token_for(kDetailTokens, static_cast<std::size_t>(record.detail));
  line += '|';
  line += token_for(kWorkloadTokens, static_cast<std::size_t>(record.workload));
  return line;
}

FailureRecord TanAdapter::parse_line(std::string_view line) const {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::vector<std::string> fields = split(line, '|');
  if (fields.size() != 8) {
    throw ParseError("expected 8 pipe-separated fields, got " +
                     std::to_string(fields.size()));
  }
  FailureRecord record;
  record.system_id = static_cast<int>(parse_i64(fields[0]));
  record.node_id = static_cast<int>(parse_i64(fields[1]));
  record.start = parse_us_timestamp(fields[2]);
  record.end = parse_us_timestamp(fields[3]);
  const std::int64_t duration = parse_i64(fields[4]);
  if (duration != record.end - record.start) {
    throw ValidationError(
        "duration " + std::to_string(duration) +
        "s disagrees with the down/up interval (" +
        std::to_string(record.end - record.start) + "s)");
  }
  record.cause =
      kAllRootCauses[index_of_token(kCauseTokens, fields[5], "category")];
  record.detail = static_cast<DetailCause>(
      index_of_token(kDetailTokens, fields[6], "subcategory"));
  record.workload = static_cast<Workload>(
      index_of_token(kWorkloadTokens, fields[7], "workload"));
  validate_adapted(record);
  return record;
}

}  // namespace hpcfail::trace::adapters
