// One failure record, exactly the fields of the public LANL release that
// the paper's analyses consume: when the failure started and was resolved,
// which system and node it hit, the workload on that node, and the
// (high-level + detailed) root cause.
#pragma once

#include "common/time.hpp"
#include "trace/types.hpp"

namespace hpcfail::trace {

struct FailureRecord {
  int system_id = 0;        ///< 1..22, see SystemCatalog
  int node_id = 0;          ///< 0-based within the system
  Seconds start = 0;        ///< failure detected / node down
  Seconds end = 0;          ///< node returned to the job mix; end >= start
  Workload workload = Workload::compute;
  RootCause cause = RootCause::unknown;
  DetailCause detail = DetailCause::undetermined;

  /// Repair duration in seconds (the paper's "time to repair").
  Seconds downtime_seconds() const noexcept { return end - start; }

  /// Repair duration in minutes, the unit of Table 2 and Fig 7.
  double downtime_minutes() const noexcept {
    return static_cast<double>(end - start) / 60.0;
  }

  /// Record-level sanity: end >= start, plausible ids, cause/detail agree.
  bool is_consistent() const noexcept {
    return end >= start && system_id >= 1 && node_id >= 0 &&
           category_of(detail) == cause;
  }

  friend bool operator==(const FailureRecord&, const FailureRecord&) = default;
};

}  // namespace hpcfail::trace
