#include "trace/index.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hpcfail::trace {

namespace {

/// Start-projected binary search: the subrange of the start-sorted view
/// whose starts lie in [from, to).
ColumnsView window_of(ColumnsView view, Seconds from, Seconds to) {
  if (from >= to) return view.subview(0, 0);
  const std::span<const Seconds> starts = view.starts();
  const auto lo = std::lower_bound(starts.begin(), starts.end(), from);
  const auto hi = std::lower_bound(lo, starts.end(), to);
  return view.subview(static_cast<std::size_t>(lo - starts.begin()),
                      static_cast<std::size_t>(hi - lo));
}

/// Same search over a posting list of start times.
std::span<const Seconds> window_of(std::span<const Seconds> starts,
                                   Seconds from, Seconds to) {
  if (from >= to) return starts.subspan(0, 0);
  const auto lo = std::lower_bound(starts.begin(), starts.end(), from);
  const auto hi = std::lower_bound(lo, starts.end(), to);
  return starts.subspan(static_cast<std::size_t>(lo - starts.begin()),
                        static_cast<std::size_t>(hi - lo));
}

std::vector<double> gaps_of(std::span<const Seconds> starts) {
  std::vector<double> gaps;
  if (starts.size() >= 2) {
    gaps.reserve(starts.size() - 1);
    for (std::size_t i = 1; i < starts.size(); ++i) {
      gaps.push_back(static_cast<double>(starts[i] - starts[i - 1]));
    }
  }
  return gaps;
}

}  // namespace

// ---------------------------------------------------------------------------
// DatasetIndex

DatasetIndex::DatasetIndex(const ColumnStore& columns)
    : base_(columns) {
  const auto build_start = std::chrono::steady_clock::now();
  hpcfail::obs::ScopedTimer timer("trace.index_build");
  const std::size_t n = columns.size();

  // Pass 1 (sequential, O(n)): per-system counts, then contiguous slices
  // in ascending system-id order.
  std::map<int, std::size_t> counts;
  for (int id : columns.system_id) ++counts[id];
  systems_.reserve(counts.size());
  std::size_t offset = 0;
  for (const auto& [system_id, count] : counts) {
    SystemSlice slice;
    slice.system_id = system_id;
    slice.begin = offset;
    slice.end = offset + count;
    systems_.push_back(slice);
    offset += count;
  }

  // Pass 2 (sequential, O(n)): stable scatter into the partition. The
  // base columns are (start, system, node)-sorted, so each system's slice
  // comes out (start, node)-sorted. Destinations are computed once, then
  // each column scatters independently — a streaming write per column
  // instead of a strided 32-byte record store.
  by_system_.resize(n);
  {
    std::vector<std::size_t> dest(n);
    std::map<int, std::size_t> cursor;
    for (const SystemSlice& s : systems_) cursor[s.system_id] = s.begin;
    for (std::size_t i = 0; i < n; ++i) {
      dest[i] = cursor[columns.system_id[i]]++;
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.system_id[dest[i]] = columns.system_id[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.node_id[dest[i]] = columns.node_id[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.start[dest[i]] = columns.start[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.end[dest[i]] = columns.end[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.workload[dest[i]] = columns.workload[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.cause[dest[i]] = columns.cause[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      by_system_.detail[dest[i]] = columns.detail[i];
    }
  }

  // Pass 3 (parallel over systems, deterministic): per-(system, node)
  // posting lists. Each system's lists land in its own slice of
  // node_starts_ (same offsets as the partition), so workers never share
  // output and the result is identical at any thread count.
  node_starts_.resize(n);
  std::vector<std::vector<NodeSlice>> per_system_nodes(systems_.size());
  parallel_for(systems_.size(), [this, &per_system_nodes](std::size_t si) {
    const SystemSlice& s = systems_[si];
    std::map<int, std::vector<Seconds>> by_node;
    for (std::size_t i = s.begin; i < s.end; ++i) {
      by_node[by_system_.node_id[i]].push_back(by_system_.start[i]);
    }
    std::size_t off = s.begin;
    per_system_nodes[si].reserve(by_node.size());
    for (auto& [node_id, starts] : by_node) {
      NodeSlice slice;
      slice.node_id = node_id;
      slice.begin = off;
      slice.end = off + starts.size();
      per_system_nodes[si].push_back(slice);
      std::copy(starts.begin(), starts.end(),
                node_starts_.begin() + static_cast<std::ptrdiff_t>(off));
      off += starts.size();
    }
  });
  std::size_t total_nodes = 0;
  for (const auto& nodes : per_system_nodes) total_nodes += nodes.size();
  node_slices_.reserve(total_nodes);
  for (std::size_t si = 0; si < systems_.size(); ++si) {
    systems_[si].nodes_begin = node_slices_.size();
    node_slices_.insert(node_slices_.end(), per_system_nodes[si].begin(),
                        per_system_nodes[si].end());
    systems_[si].nodes_end = node_slices_.size();
  }

  if (obs::enabled()) {
    const auto elapsed =
        std::chrono::steady_clock::now() - build_start;
    obs::registry().gauge("dataset.index_build_ms")
        .set(std::chrono::duration<double, std::milli>(elapsed).count());
    obs::registry().gauge("dataset.index_records")
        .set(static_cast<double>(base_.size()));
  }
}

DatasetView DatasetIndex::all() const noexcept {
  DatasetView view;
  view.index_ = this;
  view.view_ = base_;
  return view;
}

std::vector<int> DatasetIndex::system_ids() const {
  std::vector<int> ids;
  ids.reserve(systems_.size());
  for (const SystemSlice& s : systems_) ids.push_back(s.system_id);
  return ids;
}

const DatasetIndex::SystemSlice* DatasetIndex::find_system(
    int system_id) const noexcept {
  const auto it = std::lower_bound(
      systems_.begin(), systems_.end(), system_id,
      [](const SystemSlice& s, int id) { return s.system_id < id; });
  if (it == systems_.end() || it->system_id != system_id) return nullptr;
  return &*it;
}

void DatasetIndex::count_view_hit() const noexcept {
  if (!obs::enabled()) return;
  // Resolved lazily so that obs enabled *after* the index was built still
  // counts hits; registry().counter() is idempotent, so a race between
  // resolvers just stores the same pointer twice.
  obs::Counter* counter = view_hits_.load(std::memory_order_acquire);
  if (counter == nullptr) {
    counter = &obs::registry().counter("dataset.view_hits");
    view_hits_.store(counter, std::memory_order_release);
  }
  counter->add(1);
}

// ---------------------------------------------------------------------------
// DatasetView

Seconds DatasetView::first_start() const {
  HPCFAIL_EXPECTS(!view_.empty(), "first_start of empty view");
  return view_.starts().front();
}

Seconds DatasetView::last_end() const {
  HPCFAIL_EXPECTS(!view_.empty(), "last_end of empty view");
  const std::span<const Seconds> ends = view_.ends();
  Seconds latest = ends.front();
  for (Seconds e : ends) latest = std::max(latest, e);
  return latest;
}

DatasetView DatasetView::for_system(int system_id) const {
  DatasetView view = *this;
  view.system_ = system_id;
  view.view_ = {};
  if (index_ == nullptr) return view;
  index_->count_view_hit();
  if (system_.has_value()) {
    // Already scoped: same system is a no-op, a different one is empty.
    if (*system_ == system_id) view.view_ = view_;
    return view;
  }
  const DatasetIndex::SystemSlice* slice = index_->find_system(system_id);
  if (slice == nullptr) return view;
  const ColumnsView partition(&index_->by_system_, slice->begin,
                              slice->end - slice->begin);
  view.view_ = windowed_ ? window_of(partition, from_, to_) : partition;
  return view;
}

DatasetView DatasetView::between(Seconds from, Seconds to) const {
  DatasetView view = *this;
  if (windowed_) {
    view.from_ = std::max(from_, from);
    view.to_ = std::min(to_, to);
  } else {
    view.from_ = from;
    view.to_ = to;
  }
  view.windowed_ = true;
  // The current view is start-sorted whatever its scope, so narrowing
  // never needs to consult the index again.
  view.view_ = window_of(view_, view.from_, view.to_);
  if (index_ != nullptr) index_->count_view_hit();
  return view;
}

std::vector<double> DatasetView::node_interarrivals(int node_id) const {
  HPCFAIL_EXPECTS(system_.has_value(),
                  "node_interarrivals requires a system-scoped view");
  if (index_ == nullptr) return {};
  index_->count_view_hit();
  const DatasetIndex::SystemSlice* slice = index_->find_system(*system_);
  if (slice == nullptr) return {};
  const auto nodes_begin = index_->node_slices_.begin() +
                           static_cast<std::ptrdiff_t>(slice->nodes_begin);
  const auto nodes_end = index_->node_slices_.begin() +
                         static_cast<std::ptrdiff_t>(slice->nodes_end);
  const auto it = std::lower_bound(
      nodes_begin, nodes_end, node_id,
      [](const DatasetIndex::NodeSlice& s, int id) { return s.node_id < id; });
  if (it == nodes_end || it->node_id != node_id) return {};
  std::span<const Seconds> starts(index_->node_starts_.data() + it->begin,
                                  it->end - it->begin);
  if (windowed_) starts = window_of(starts, from_, to_);
  return gaps_of(starts);
}

std::vector<double> DatasetView::system_interarrivals() const {
  HPCFAIL_EXPECTS(system_.has_value(),
                  "system_interarrivals requires a system-scoped view");
  if (index_ != nullptr) index_->count_view_hit();
  const std::span<const Seconds> starts = view_.starts();
  std::vector<double> gaps;
  if (starts.size() >= 2) {
    gaps.reserve(starts.size() - 1);
    for (std::size_t i = 1; i < starts.size(); ++i) {
      gaps.push_back(static_cast<double>(starts[i] - starts[i - 1]));
    }
  }
  return gaps;
}

std::vector<NodeInterarrivalGroup> DatasetView::node_interarrival_groups(
    std::size_t min_gaps) const {
  HPCFAIL_EXPECTS(system_.has_value(),
                  "node_interarrival_groups requires a system-scoped view");
  std::vector<NodeInterarrivalGroup> groups;
  if (index_ == nullptr) return groups;
  index_->count_view_hit();
  const DatasetIndex::SystemSlice* slice = index_->find_system(*system_);
  if (slice == nullptr) return groups;
  for (std::size_t ni = slice->nodes_begin; ni < slice->nodes_end; ++ni) {
    const DatasetIndex::NodeSlice& node = index_->node_slices_[ni];
    std::span<const Seconds> starts(index_->node_starts_.data() + node.begin,
                                    node.end - node.begin);
    if (windowed_) starts = window_of(starts, from_, to_);
    // n records -> n-1 gaps; skip nodes below the floor (and, when the
    // window empties a node, skip it entirely).
    if (starts.empty() || starts.size() < min_gaps + 1) continue;
    NodeInterarrivalGroup group;
    group.node_id = node.node_id;
    group.gaps_seconds = gaps_of(starts);
    groups.push_back(std::move(group));
  }
  return groups;
}

std::map<int, std::size_t> DatasetView::failures_per_node() const {
  HPCFAIL_EXPECTS(system_.has_value(),
                  "failures_per_node requires a system-scoped view");
  std::map<int, std::size_t> counts;
  if (index_ == nullptr) return counts;
  index_->count_view_hit();
  const DatasetIndex::SystemSlice* slice = index_->find_system(*system_);
  if (slice == nullptr) return counts;
  for (std::size_t ni = slice->nodes_begin; ni < slice->nodes_end; ++ni) {
    const DatasetIndex::NodeSlice& node = index_->node_slices_[ni];
    std::size_t count = node.end - node.begin;
    if (windowed_) {
      std::span<const Seconds> starts(
          index_->node_starts_.data() + node.begin, count);
      count = window_of(starts, from_, to_).size();
    }
    if (count > 0) counts[node.node_id] = count;
  }
  return counts;
}

std::vector<double> DatasetView::repair_times_minutes() const {
  if (index_ != nullptr) index_->count_view_hit();
  // Fused unit conversion over the start/end columns (the division stays
  // a division so values match the per-record helper bit for bit).
  const std::span<const Seconds> starts = view_.starts();
  const std::span<const Seconds> ends = view_.ends();
  std::vector<double> times;
  times.reserve(starts.size());
  for (std::size_t i = 0; i < starts.size(); ++i) {
    times.push_back(static_cast<double>(ends[i] - starts[i]) / 60.0);
  }
  return times;
}

double DatasetView::total_downtime_minutes() const noexcept {
  const std::span<const Seconds> starts = view_.starts();
  const std::span<const Seconds> ends = view_.ends();
  double total = 0.0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    total += static_cast<double>(ends[i] - starts[i]) / 60.0;
  }
  return total;
}

FailureDataset DatasetView::materialize() const {
  // View columns are already (start, system, node)-sorted and were
  // validated when the source dataset was built.
  return FailureDataset::from_sorted_columns(view_.to_store());
}

}  // namespace hpcfail::trace
