#include "trace/types.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace hpcfail::trace {

RootCause category_of(DetailCause detail) noexcept {
  switch (detail) {
    case DetailCause::memory_dimm:
    case DetailCause::cpu:
    case DetailCause::node_interconnect:
    case DetailCause::power_supply:
    case DetailCause::disk:
    case DetailCause::other_hardware:
      return RootCause::hardware;
    case DetailCause::operating_system:
    case DetailCause::parallel_fs:
    case DetailCause::scheduler:
    case DetailCause::other_software:
      return RootCause::software;
    case DetailCause::network_switch:
    case DetailCause::nic:
      return RootCause::network;
    case DetailCause::power_outage:
    case DetailCause::ac_failure:
      return RootCause::environment;
    case DetailCause::operator_error:
      return RootCause::human;
    case DetailCause::undetermined:
      return RootCause::unknown;
  }
  return RootCause::unknown;
}

std::size_t cause_index(RootCause cause) noexcept {
  switch (cause) {
    case RootCause::hardware: return 0;
    case RootCause::software: return 1;
    case RootCause::network: return 2;
    case RootCause::environment: return 3;
    case RootCause::human: return 4;
    case RootCause::unknown: return 5;
  }
  return 5;
}

std::string to_string(RootCause cause) {
  switch (cause) {
    case RootCause::hardware: return "hardware";
    case RootCause::software: return "software";
    case RootCause::network: return "network";
    case RootCause::environment: return "environment";
    case RootCause::human: return "human";
    case RootCause::unknown: return "unknown";
  }
  throw InvalidArgument("invalid RootCause value");
}

std::string to_string(DetailCause detail) {
  switch (detail) {
    case DetailCause::memory_dimm: return "memory_dimm";
    case DetailCause::cpu: return "cpu";
    case DetailCause::node_interconnect: return "node_interconnect";
    case DetailCause::power_supply: return "power_supply";
    case DetailCause::disk: return "disk";
    case DetailCause::other_hardware: return "other_hardware";
    case DetailCause::operating_system: return "operating_system";
    case DetailCause::parallel_fs: return "parallel_fs";
    case DetailCause::scheduler: return "scheduler";
    case DetailCause::other_software: return "other_software";
    case DetailCause::network_switch: return "network_switch";
    case DetailCause::nic: return "nic";
    case DetailCause::power_outage: return "power_outage";
    case DetailCause::ac_failure: return "ac_failure";
    case DetailCause::operator_error: return "operator_error";
    case DetailCause::undetermined: return "undetermined";
  }
  throw InvalidArgument("invalid DetailCause value");
}

std::string to_string(Workload workload) {
  switch (workload) {
    case Workload::compute: return "compute";
    case Workload::graphics: return "graphics";
    case Workload::frontend: return "fe";
  }
  throw InvalidArgument("invalid Workload value");
}

RootCause root_cause_from_string(std::string_view text) {
  const std::string t = to_lower(trim(text));
  for (const RootCause cause : kAllRootCauses) {
    if (t == to_string(cause)) return cause;
  }
  throw ParseError("unknown root cause: '" + std::string(text) + "'");
}

DetailCause detail_cause_from_string(std::string_view text) {
  static constexpr std::array<DetailCause, 16> kAll = {
      DetailCause::memory_dimm,      DetailCause::cpu,
      DetailCause::node_interconnect, DetailCause::power_supply,
      DetailCause::disk,             DetailCause::other_hardware,
      DetailCause::operating_system, DetailCause::parallel_fs,
      DetailCause::scheduler,        DetailCause::other_software,
      DetailCause::network_switch,   DetailCause::nic,
      DetailCause::power_outage,     DetailCause::ac_failure,
      DetailCause::operator_error,   DetailCause::undetermined,
  };
  const std::string t = to_lower(trim(text));
  for (const DetailCause detail : kAll) {
    if (t == to_string(detail)) return detail;
  }
  throw ParseError("unknown detail cause: '" + std::string(text) + "'");
}

Workload workload_from_string(std::string_view text) {
  const std::string t = to_lower(trim(text));
  if (t == "compute") return Workload::compute;
  if (t == "graphics") return Workload::graphics;
  if (t == "fe" || t == "frontend" || t == "front-end") {
    return Workload::frontend;
  }
  throw ParseError("unknown workload: '" + std::string(text) + "'");
}

}  // namespace hpcfail::trace
