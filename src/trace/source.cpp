#include "trace/source.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <array>
#include <fstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/io.hpp"

namespace hpcfail::trace {

namespace {

std::string_view trim_view(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

FailureRecord record_from_views(const std::array<std::string_view, 7>& f) {
  FailureRecord r;
  r.system_id = static_cast<int>(parse_i64(trim_view(f[0])));
  r.node_id = static_cast<int>(parse_i64(trim_view(f[1])));
  r.start = parse_timestamp(trim_view(f[2]));
  r.end = parse_timestamp(trim_view(f[3]));
  r.workload = workload_from_string(f[4]);
  r.cause = root_cause_from_string(f[5]);
  r.detail = detail_cause_from_string(f[6]);
  if (!r.is_consistent()) {
    throw ParseError("inconsistent record (end < start, bad ids, or "
                     "cause/detail mismatch)");
  }
  return r;
}

}  // namespace

FailureRecord record_from_fields(const std::vector<std::string>& fields) {
  if (fields.size() != 7) {
    throw ParseError("expected 7 fields, got " +
                     std::to_string(fields.size()));
  }
  std::array<std::string_view, 7> f;
  for (std::size_t i = 0; i < 7; ++i) f[i] = fields[i];
  return record_from_views(f);
}

FailureRecord record_from_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::array<std::string_view, 7> f;
  std::size_t count = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t comma = line.find(',', pos);
    const std::string_view field =
        comma == std::string_view::npos ? line.substr(pos)
                                        : line.substr(pos, comma - pos);
    if (count < 7) f[count] = field;
    ++count;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (count != 7) {
    throw ParseError("expected 7 fields, got " + std::to_string(count));
  }
  return record_from_views(f);
}

CsvSource::CsvSource(std::istream& in, OnError on_error)
    : reader_(in), on_error_(on_error) {
  if (!reader_.next_row(row_)) {
    throw ParseError("empty trace file (missing header)");
  }
  std::string joined;
  for (std::size_t i = 0; i < row_.size(); ++i) {
    if (i != 0) joined += ',';
    joined += trim(row_[i]);
  }
  if (joined != kCsvHeader) {
    throw ParseError("unexpected trace header: '" + joined + "'");
  }
}

SourceStatus CsvSource::next(FailureRecord& out) {
  while (reader_.next_row(row_)) {
    const std::size_t line = reader_.line_number();
    if (row_.size() == 1 && trim(row_[0]).empty()) continue;  // blank line
    try {
      out = record_from_fields(row_);
      ++counters_.accepted;
      return SourceStatus::event;
    } catch (const ParseError& e) {
      const std::string message =
          "line " + std::to_string(line) + ": " + e.what();
      if (on_error_ == OnError::throw_) throw ParseError(message);
      ++counters_.rejected;
      counters_.last_error = message;
    }
  }
  return SourceStatus::end;
}

void LineSource::feed(std::string_view bytes) { buffer_.append(bytes); }

bool LineSource::parse_line(std::string_view line, FailureRecord& out) {
  ++lines_seen_;
  const std::string_view stripped = trim_view(line);
  const std::string_view header =
      adapter_ != nullptr ? adapter_->header() : std::string_view(kCsvHeader);
  if (stripped.empty() || stripped == header) return false;
  try {
    // Adapters throw both ParseError (malformed) and ValidationError
    // (semantically inconsistent); streaming ingest flattens the whole
    // Error taxonomy into reject-and-count, so one bad line never takes
    // the daemon down regardless of which type the decoder raises.
    out = adapter_ != nullptr ? adapter_->parse_line(line)
                              : record_from_line(line);
    ++counters_.accepted;
    return true;
  } catch (const Error& e) {
    ++counters_.rejected;
    counters_.last_error =
        "line " + std::to_string(lines_seen_) + ": " + e.what();
    return false;
  }
}

SourceStatus LineSource::next(FailureRecord& out) {
  while (true) {
    const std::size_t nl = buffer_.find('\n', pos_);
    if (nl == std::string::npos) {
      if (finished_) {
        if (pos_ < buffer_.size()) {  // final unterminated line
          const std::string_view line =
              std::string_view(buffer_).substr(pos_);
          pos_ = buffer_.size();
          if (parse_line(line, out)) return SourceStatus::event;
          continue;
        }
        return SourceStatus::end;
      }
      // Compact consumed bytes so the buffer stays bounded by the largest
      // partial line plus one feed() chunk.
      if (pos_ > 0) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return SourceStatus::idle;
    }
    const std::string_view line =
        std::string_view(buffer_).substr(pos_, nl - pos_);
    pos_ = nl + 1;
    if (parse_line(line, out)) return SourceStatus::event;
  }
}

TailSource::TailSource(std::string path, std::uint64_t start_offset,
                       const Adapter* adapter)
    : path_(std::move(path)), offset_(start_offset), lines_(adapter) {}

std::size_t TailSource::poll_file() {
  constexpr std::size_t kSignatureBytes = 64;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;  // not created yet (or unreadable): stay idle
  in.seekg(0, std::ios::end);
  const auto size_pos = in.tellg();
  if (size_pos < 0) return 0;
  const auto size = static_cast<std::uint64_t>(size_pos);

  // Rewrite check (see the class comment): shrink below the consumed
  // offset, a different inode, or different leading bytes all mean the
  // path no longer continues the stream we were tailing.
  bool rewritten = size < offset_;
  struct stat st{};
  if (::stat(path_.c_str(), &st) == 0) {
    if (inode_ != 0 && static_cast<std::uint64_t>(st.st_ino) != inode_) {
      rewritten = true;
    }
    inode_ = static_cast<std::uint64_t>(st.st_ino);
  }
  std::string probe(
      static_cast<std::size_t>(std::min<std::uint64_t>(size, kSignatureBytes)),
      '\0');
  if (!probe.empty()) {
    in.seekg(0);
    in.read(probe.data(), static_cast<std::streamsize>(probe.size()));
    probe.resize(static_cast<std::size_t>(in.gcount()));
  }
  const std::size_t common = std::min(signature_.size(), probe.size());
  if (common > 0 && probe.compare(0, common, signature_, 0, common) != 0) {
    rewritten = true;
  }
  if (rewritten) {
    offset_ = 0;
    signature_ = probe;
    lines_.reset();  // drop stale partial-line bytes from the old file
    ++rewrites_;
  } else if (probe.size() > signature_.size()) {
    signature_ = probe;  // the file grew into the signature window
  }

  if (size == offset_) return 0;
  in.clear();  // the signature read may have hit EOF on short files
  in.seekg(static_cast<std::streamoff>(offset_));
  std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
  in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  const auto got = static_cast<std::size_t>(in.gcount());
  chunk.resize(got);
  offset_ += got;
  lines_.feed(chunk);
  return got;
}

SourceStatus TailSource::next(FailureRecord& out) {
  SourceStatus status = lines_.next(out);
  if (status != SourceStatus::idle) return status;
  if (poll_file() == 0) return SourceStatus::idle;
  status = lines_.next(out);
  // The inner LineSource never ends (finish() is never called on it).
  return status;
}

}  // namespace hpcfail::trace
