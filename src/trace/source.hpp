// Pull-based event sources: the unified ingest surface behind both the
// batch CSV reader and the streaming daemon (`hpcfail serve`).
//
// A Source yields FailureRecords one at a time. Batch sources (CsvSource)
// only ever report `event` or `end`; streaming sources (LineSource,
// TailSource) additionally report `idle` when no complete event is
// available *yet* — the caller polls again later. Malformed input is
// handled per the source's error policy: the strict CSV path throws
// ParseError with a line number (preserving read_csv's exact messages),
// while streaming sources reject-and-count so one bad line never takes
// the daemon down (counters() exposes accepted/rejected totals and the
// last rejection message).
//
// The wire format for the line-protocol sources is one CSV row per line,
// same field order as kCsvHeader (system,node,start,end,workload,cause,
// detail), no quoting. Blank lines and lines equal to the canonical
// header are skipped silently so `nc daemon < trace.csv` just works.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "common/csv.hpp"
#include "trace/record.hpp"

namespace hpcfail::trace {

class Adapter;  // trace/adapters/adapter.hpp

/// Result of one Source::next() poll.
enum class SourceStatus {
  event,  ///< `out` holds a valid record
  idle,   ///< no complete event available yet; poll again later
  end,    ///< the source is exhausted; no further events will arrive
};

/// Ingest accounting shared by every source.
struct SourceCounters {
  std::uint64_t accepted = 0;  ///< records successfully parsed
  std::uint64_t rejected = 0;  ///< malformed lines dropped (reject policy)
  std::string last_error;      ///< message of the most recent rejection
};

/// Abstract pull-based event iterator.
class Source {
 public:
  virtual ~Source() = default;

  /// Advances to the next record. Returns `event` and fills `out`, or
  /// `idle`/`end` per the source's contract. Strict sources may throw
  /// ParseError instead of rejecting.
  virtual SourceStatus next(FailureRecord& out) = 0;

  /// Accept/reject accounting since construction.
  virtual const SourceCounters& counters() const noexcept {
    return counters_;
  }

 protected:
  SourceCounters counters_;
};

/// Builds a record from the 7 canonical fields. Fields 0-3 (ids and
/// timestamps) are trimmed; workload/cause/detail are parsed verbatim,
/// matching the historical read_csv behavior. Throws ParseError (without
/// a line prefix; callers add one) on any malformed field or an
/// inconsistent record.
FailureRecord record_from_fields(const std::vector<std::string>& fields);

/// Parses one line-protocol line (7 comma-separated fields, optional
/// trailing '\r'). Allocation-free splitting; same validation and error
/// messages as record_from_fields, plus "expected 7 fields, got N" when
/// the field count is wrong.
FailureRecord record_from_line(std::string_view line);

/// Strict/lenient CSV source over any istream. The constructor consumes
/// and validates the canonical header (always throwing ParseError on a
/// missing or unexpected header, regardless of policy). next() never
/// returns `idle`.
class CsvSource : public Source {
 public:
  enum class OnError {
    throw_,  ///< propagate ParseError with "line N: ..." (read_csv contract)
    reject,  ///< count the bad row and keep going
  };

  /// `in` must outlive the source. Reads the header immediately.
  explicit CsvSource(std::istream& in, OnError on_error = OnError::throw_);

  SourceStatus next(FailureRecord& out) override;

 private:
  CsvReader reader_;
  OnError on_error_;
  std::vector<std::string> row_;
};

/// Streaming line-protocol source fed by pushed byte chunks (the TCP
/// ingest path). feed() appends raw bytes; next() yields one record per
/// complete '\n'-terminated line, `idle` when the buffer holds no
/// complete line, and `end` once finish() has been called and the buffer
/// is drained (a final unterminated line is still parsed). Malformed
/// lines are always reject-and-count.
class LineSource : public Source {
 public:
  /// Native line protocol (one canonical CSV row per line).
  LineSource() = default;

  /// Lines are decoded by `adapter` (a foreign schema; see
  /// trace/adapters/adapter.hpp) instead of the native protocol — the
  /// `hpcfail serve --format <name>` ingest path. Blank lines and lines
  /// equal to the adapter's header are skipped silently, and both
  /// ParseError and ValidationError from the adapter reject-and-count.
  /// The adapter must outlive the source; nullptr selects the native
  /// protocol.
  explicit LineSource(const Adapter* adapter) : adapter_(adapter) {}

  /// Appends raw bytes (need not align with line boundaries).
  void feed(std::string_view bytes);

  /// Declares end-of-stream; next() drains the remainder then returns
  /// `end`.
  void finish() noexcept { finished_ = true; }

  /// Discards all buffered (unconsumed) bytes and clears the finished
  /// flag — for owners that detect the underlying byte stream restarted
  /// (e.g. a followed file was rewritten), so a stale partial line never
  /// splices onto the new stream. Counters and lines_seen() persist.
  void reset() noexcept {
    buffer_.clear();
    pos_ = 0;
    finished_ = false;
  }

  SourceStatus next(FailureRecord& out) override;

  /// Total '\n'-terminated lines consumed so far (blank/header included).
  std::uint64_t lines_seen() const noexcept { return lines_seen_; }

 private:
  bool parse_line(std::string_view line, FailureRecord& out);

  const Adapter* adapter_ = nullptr;  ///< null = native line protocol
  std::string buffer_;
  std::size_t pos_ = 0;  ///< start of the first unconsumed byte
  std::uint64_t lines_seen_ = 0;
  bool finished_ = false;
};

/// Follows a file that other processes append to (`tail -f` semantics).
/// Each next() that finds the inner buffer empty re-opens the file, seeks
/// past everything already consumed, and feeds any new bytes; `idle`
/// means no new data (or the file does not exist yet). Never returns
/// `end` — the caller decides when to stop polling.
///
/// Rewrite detection: a size below the consumed offset alone misses the
/// truncate-then-regrow race (logrotate's copytruncate plus a fast
/// producer can push the new file past the old offset between polls, and
/// a same-size rewrite never shrinks at all). Each poll therefore also
/// compares the file's inode and its leading bytes against what was
/// tailed before; any mismatch restarts cleanly from offset 0 and drops
/// buffered partial-line bytes from the old file. A rewrite whose first
/// bytes are identical to the old file's (up to the signature length) on
/// the same inode is indistinguishable from an append and is read as
/// one — the protocol's header line makes that benign for event traces.
class TailSource : public Source {
 public:
  /// `adapter` selects a foreign line format for the tailed file (null =
  /// native protocol); it must outlive the source.
  explicit TailSource(std::string path, std::uint64_t start_offset = 0,
                      const Adapter* adapter = nullptr);

  SourceStatus next(FailureRecord& out) override;

  const SourceCounters& counters() const noexcept override {
    return lines_.counters();
  }

  /// Byte offset of the next read.
  std::uint64_t offset() const noexcept { return offset_; }

  /// Times a rewrite (truncation or replacement) was detected and the
  /// tail restarted from the top.
  std::uint64_t rewrites_detected() const noexcept { return rewrites_; }

 private:
  /// Reads newly appended bytes into the line buffer. Returns the byte
  /// count fed (0 when nothing new).
  std::size_t poll_file();

  std::string path_;
  std::uint64_t offset_ = 0;
  std::uint64_t inode_ = 0;     ///< 0 until the file is first seen
  std::string signature_;       ///< leading bytes of the tailed file
  std::uint64_t rewrites_ = 0;
  LineSource lines_;
};

}  // namespace hpcfail::trace
