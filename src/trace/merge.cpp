#include "trace/merge.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/error.hpp"

namespace hpcfail::trace {
namespace {

unsigned bits_for(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::bit_width(v));
}

constexpr unsigned kRadixDigitBits = 16;

}  // namespace

MergeKeySpec make_merge_key_spec(Seconds min_start, Seconds max_start,
                                 std::int64_t max_system,
                                 std::int64_t max_node) noexcept {
  MergeKeySpec spec;
  if (max_start < min_start || max_system < 0 || max_node < 0) return spec;
  spec.base = min_start;
  spec.start_bits = bits_for(static_cast<std::uint64_t>(max_start - min_start));
  spec.sys_bits = bits_for(static_cast<std::uint64_t>(max_system));
  spec.node_bits = bits_for(static_cast<std::uint64_t>(max_node));
  spec.packable = spec.total_bits() <= 64;
  return spec;
}

MergeKeySpec merge_key_spec_for(
    const std::vector<MergeInput>& parts) noexcept {
  Seconds lo = std::numeric_limits<Seconds>::max();
  Seconds hi = std::numeric_limits<Seconds>::min();
  std::int64_t max_sys = 0;
  std::int64_t max_node = 0;
  bool any = false;
  for (const MergeInput& p : parts) {
    if (p.columns == nullptr) continue;
    const ColumnStore& c = *p.columns;
    for (std::size_t i = 0; i < c.size(); ++i) {
      any = true;
      lo = std::min(lo, c.start[i]);
      hi = std::max(hi, c.start[i]);
      if (c.system_id[i] < 0 || c.node_id[i] < 0) return MergeKeySpec{};
      max_sys = std::max(max_sys, static_cast<std::int64_t>(c.system_id[i]));
      max_node = std::max(max_node, static_cast<std::int64_t>(c.node_id[i]));
    }
  }
  if (!any) return MergeKeySpec{};
  return make_merge_key_spec(lo, hi, max_sys, max_node);
}

ColumnStore merge_sorted_by_comparison(const std::vector<MergeInput>& parts) {
  std::size_t total = 0;
  for (const MergeInput& p : parts) {
    if (p.columns != nullptr) total += p.columns->size();
  }
  if (total == 0) return ColumnStore{};

  struct Ref {
    Seconds start;
    int system;
    int node;
    std::uint32_t part;
    std::size_t pos;
  };
  std::vector<Ref> refs;
  refs.reserve(total);
  for (std::uint32_t p = 0; p < parts.size(); ++p) {
    if (parts[p].columns == nullptr) continue;
    const ColumnStore& c = *parts[p].columns;
    for (std::size_t i = 0; i < c.size(); ++i) {
      refs.push_back({c.start[i], c.system_id[i], c.node_id[i], p, i});
    }
  }
  std::stable_sort(refs.begin(), refs.end(),
                   [](const Ref& a, const Ref& b) noexcept {
                     if (a.start != b.start) return a.start < b.start;
                     if (a.system != b.system) return a.system < b.system;
                     return a.node < b.node;
                   });

  ColumnStore out;
  out.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const Ref& r = refs[i];
    const ColumnStore& c = *parts[r.part].columns;
    out.system_id[i] = c.system_id[r.pos];
    out.node_id[i] = c.node_id[r.pos];
    out.start[i] = c.start[r.pos];
    out.end[i] = c.end[r.pos];
    out.workload[i] = c.workload[r.pos];
    out.cause[i] = c.cause[r.pos];
    out.detail[i] = c.detail[r.pos];
  }
  return out;
}

// Stable LSD radix sort of the packed keys carrying a (part, row)
// reference, then one gather pass per output column. Stability leaves
// equal keys in (part, row) order, so the result is deterministic and
// independent of how the rows were partitioned across parts.
ColumnStore merge_sorted(std::vector<MergeInput>&& parts,
                         const MergeKeySpec& spec) {
  std::size_t total = 0;
  std::size_t max_rows = 0;
  for (const MergeInput& p : parts) {
    if (p.columns == nullptr) continue;
    total += p.columns->size();
    max_rows = std::max(max_rows, p.columns->size());
  }
  if (total == 0) return ColumnStore{};

  const unsigned pos_bits =
      max_rows > 1 ? bits_for(static_cast<std::uint64_t>(max_rows - 1)) : 0;
  const unsigned part_bits =
      parts.size() > 1 ? bits_for(parts.size() - 1) : 0;
  if (!spec.packable || pos_bits + part_bits > 32 ||
      total >= std::numeric_limits<std::uint32_t>::max()) {
    return merge_sorted_by_comparison(parts);
  }

  // Fill in packed keys for parts whose producer did not emit them.
  for (MergeInput& p : parts) {
    if (p.columns == nullptr || !p.keys.empty()) continue;
    const ColumnStore& c = *p.columns;
    p.keys.resize(c.size());
    for (std::size_t i = 0; i < c.size(); ++i) {
      p.keys[i] = spec.pack(c.start[i], c.system_id[i], c.node_id[i]);
    }
  }

  const unsigned key_bits = std::max(1u, spec.total_bits());
  const unsigned passes = (key_bits + kRadixDigitBits - 1) / kRadixDigitBits;
  constexpr std::size_t kBuckets = std::size_t{1} << kRadixDigitBits;
  constexpr std::uint64_t kDigitMask = kBuckets - 1;

  // Every pass's digit histogram in one read of the part keys.
  std::vector<std::uint32_t> hist(passes * kBuckets, 0);
  for (const MergeInput& part : parts) {
    HPCFAIL_ASSERT(part.columns == nullptr ||
                   part.keys.size() == part.columns->size());
    for (const std::uint64_t k : part.keys) {
      for (unsigned pass = 0; pass < passes; ++pass) {
        ++hist[pass * kBuckets +
               ((k >> (pass * kRadixDigitBits)) & kDigitMask)];
      }
    }
  }

  // A pass whose digit is constant across the input is an identity
  // permutation and is skipped; the last live pass does not need to
  // forward the keys (only the references survive it).
  const auto digit_constant = [&](unsigned pass) {
    const std::uint32_t* h = hist.data() + pass * kBuckets;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      if (h[d] == 0) continue;
      return static_cast<std::size_t>(h[d]) == total;
    }
    return true;
  };
  unsigned live_passes = 0;
  unsigned last_live = 0;
  for (unsigned pass = 0; pass < passes; ++pass) {
    if (!digit_constant(pass)) {
      ++live_passes;
      last_live = pass;
    }
  }

  std::vector<std::uint32_t> ref(total);
  if (live_passes == 0) {
    // Fully constant keys: input order already is the global order.
    std::size_t at = 0;
    for (std::uint32_t p = 0; p < parts.size(); ++p) {
      const auto tag = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(p) << pos_bits);
      const std::size_t n = parts[p].keys.size();
      for (std::size_t i = 0; i < n; ++i) {
        ref[at++] = tag | static_cast<std::uint32_t>(i);
      }
    }
  } else {
    std::vector<std::uint64_t> key(live_passes > 1 ? total : 0);
    std::vector<std::uint64_t> key_tmp(live_passes > 2 ? total : 0);
    std::vector<std::uint32_t> ref_tmp(live_passes > 1 ? total : 0);
    bool scattered = false;
    for (unsigned pass = 0; pass < passes; ++pass) {
      if (digit_constant(pass)) continue;
      std::uint32_t* h = hist.data() + pass * kBuckets;
      std::uint32_t sum = 0;
      for (std::size_t d = 0; d < kBuckets; ++d) {
        const std::uint32_t c = h[d];
        h[d] = sum;
        sum += c;
      }
      const unsigned shift = pass * kRadixDigitBits;
      const bool forward_keys = pass != last_live;
      if (!scattered) {
        // The first live pass streams straight out of the parts' key
        // arrays, fusing the fill copy into the scatter.
        std::uint64_t* kout = key.data();
        std::uint32_t* rout = ref.data();
        for (std::uint32_t p = 0; p < parts.size(); ++p) {
          std::vector<std::uint64_t>& pk = parts[p].keys;
          const auto tag = static_cast<std::uint32_t>(
              static_cast<std::uint64_t>(p) << pos_bits);
          const std::size_t n = pk.size();
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t k = pk[i];
            const std::uint32_t dst = h[(k >> shift) & kDigitMask]++;
            if (forward_keys) kout[dst] = k;
            rout[dst] = tag | static_cast<std::uint32_t>(i);
          }
          std::vector<std::uint64_t>().swap(pk);
        }
        scattered = true;
      } else {
        std::uint64_t* kout = key_tmp.data();
        std::uint32_t* rout = ref_tmp.data();
        const std::uint64_t* kin = key.data();
        const std::uint32_t* rin = ref.data();
        for (std::size_t i = 0; i < total; ++i) {
          const std::uint64_t k = kin[i];
          const std::uint32_t dst = h[(k >> shift) & kDigitMask]++;
          if (forward_keys) kout[dst] = k;
          rout[dst] = rin[i];
        }
        key.swap(key_tmp);
        ref.swap(ref_tmp);
      }
    }
  }
  for (MergeInput& part : parts) {
    std::vector<std::uint64_t>().swap(part.keys);
  }

  // Gather the rows in sorted order, one column at a time: the
  // destination stays a pure forward stream and the source working set
  // is a single column's per-part streams, which fit in cache.
  ColumnStore out;
  out.resize(total);
  const std::size_t nparts = parts.size();
  std::vector<const int*> sys_p(nparts);
  std::vector<const int*> node_p(nparts);
  std::vector<const Seconds*> start_p(nparts);
  std::vector<const Seconds*> end_p(nparts);
  std::vector<const Workload*> w_p(nparts);
  std::vector<const RootCause*> cause_p(nparts);
  std::vector<const DetailCause*> detail_p(nparts);
  static const ColumnStore kEmpty;
  for (std::size_t p = 0; p < nparts; ++p) {
    const ColumnStore& c =
        parts[p].columns != nullptr ? *parts[p].columns : kEmpty;
    sys_p[p] = c.system_id.data();
    node_p[p] = c.node_id.data();
    start_p[p] = c.start.data();
    end_p[p] = c.end.data();
    w_p[p] = c.workload.data();
    cause_p[p] = c.cause.data();
    detail_p[p] = c.detail.data();
  }
  const auto pos_mask =
      static_cast<std::uint32_t>((std::uint64_t{1} << pos_bits) - 1);
  const auto gather = [&](auto* dst, const auto& srcs) {
    const std::uint32_t* rp = ref.data();
    for (std::size_t i = 0; i < total; ++i) {
      const std::uint32_t r = rp[i];
      dst[i] = srcs[static_cast<std::size_t>(
          static_cast<std::uint64_t>(r) >> pos_bits)][r & pos_mask];
    }
  };
  gather(out.system_id.data(), sys_p);
  gather(out.node_id.data(), node_p);
  gather(out.start.data(), start_p);
  gather(out.end.data(), end_p);
  gather(out.workload.data(), w_p);
  gather(out.cause.data(), cause_p);
  gather(out.detail.data(), detail_p);
  return out;
}

}  // namespace hpcfail::trace
