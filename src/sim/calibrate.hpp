// Calibration: turn an observed failure trace into simulator inputs.
//
// Closes the loop between the analysis side of the library and the
// event-driven simulator. The paper's Section 5.1 argument — schedulers
// should exploit the heterogeneous per-node failure rates of Fig 3(a) —
// is only testable in simulation if the simulated cluster actually has
// the trace's per-node rates. `calibrate_nodes` derives one
// ClusterNodeConfig per node of a system: MTBF from the node category's
// production exposure divided by the node's observed failure count
// (read zero-copy off the dataset index), and repair mean/median from
// the node's own repair times, falling back to the system-wide
// statistics for nodes that never failed.
#pragma once

#include <vector>

#include "sim/cluster.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::sim {

/// One ClusterNodeConfig per node id in [0, system.nodes), calibrated
/// from the system's records in `dataset`. Nodes with no observed
/// failures get an MTBF equal to their full production exposure (a
/// lower bound: at most one failure "just missed") and the system-wide
/// repair statistics. Throws InvalidArgument if the system has no
/// failures in the dataset.
std::vector<ClusterNodeConfig> calibrate_nodes(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog, int system_id);

}  // namespace hpcfail::sim
