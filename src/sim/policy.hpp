// Resilience policies under test in fault-injection campaigns.
//
// A policy is the operator-controllable half of a campaign cell: where
// gang-scheduled jobs are placed (the paper's Section 5.1 argument that
// schedulers should exploit heterogeneous per-node failure rates) and how
// often they checkpoint (the Young/Daly interval question the paper's
// statistics exist to answer). Scenarios supply the faults; policies are
// compared against each other on identical injected-fault schedules.
#pragma once

#include <string>
#include <vector>

#include "sim/cluster.hpp"

namespace hpcfail::sim {

/// One policy under test. Names key the campaign report cells, so they
/// must be unique within a CampaignSpec.
struct CampaignPolicy {
  std::string name;
  PlacementPolicy placement = PlacementPolicy::random;
  /// Useful-work seconds between application checkpoints; 0 = none (a
  /// killed job restarts from scratch, the LANL default).
  double checkpoint_interval = 0.0;

  friend bool operator==(const CampaignPolicy&,
                         const CampaignPolicy&) = default;
};

/// No checkpointing, uniform-random placement — the unprotected baseline.
CampaignPolicy no_protection_policy();

/// Periodic checkpointing at a fixed interval, random placement. Throws
/// InvalidArgument unless the interval is positive.
CampaignPolicy periodic_checkpoint_policy(double interval_seconds);

/// Periodic checkpointing at Daly's near-optimal interval for the given
/// MTBF and checkpoint cost (sim::daly_interval), random placement.
CampaignPolicy daly_checkpoint_policy(double mtbf_seconds,
                                      double checkpoint_cost);

/// Reliability-ranked placement (prefer the nodes with the fewest
/// scheduled faults — an operator who knows the per-node rates of
/// Fig 3a) with optional periodic checkpointing (0 = none).
CampaignPolicy reliability_ranked_policy(double checkpoint_interval = 0.0);

/// The three-way comparison the campaign CLI runs by default: no
/// protection, hourly checkpoints, hourly checkpoints + ranked placement.
std::vector<CampaignPolicy> default_policy_set();

}  // namespace hpcfail::sim
