#include "sim/policy.hpp"

#include "common/error.hpp"
#include "sim/checkpoint.hpp"

namespace hpcfail::sim {

CampaignPolicy no_protection_policy() {
  return CampaignPolicy{"none", PlacementPolicy::random, 0.0};
}

CampaignPolicy periodic_checkpoint_policy(double interval_seconds) {
  HPCFAIL_EXPECTS(interval_seconds > 0.0,
                  "checkpoint interval must be positive");
  return CampaignPolicy{"periodic", PlacementPolicy::random,
                        interval_seconds};
}

CampaignPolicy daly_checkpoint_policy(double mtbf_seconds,
                                      double checkpoint_cost) {
  return CampaignPolicy{"daly", PlacementPolicy::random,
                        daly_interval(mtbf_seconds, checkpoint_cost)};
}

CampaignPolicy reliability_ranked_policy(double checkpoint_interval) {
  HPCFAIL_EXPECTS(checkpoint_interval >= 0.0,
                  "checkpoint interval must be non-negative");
  return CampaignPolicy{"ranked", PlacementPolicy::reliability_ranked,
                        checkpoint_interval};
}

std::vector<CampaignPolicy> default_policy_set() {
  CampaignPolicy hourly = periodic_checkpoint_policy(3600.0);
  hourly.name = "hourly";
  CampaignPolicy ranked = reliability_ranked_policy(3600.0);
  ranked.name = "hourly-ranked";
  return {no_protection_policy(), hourly, ranked};
}

}  // namespace hpcfail::sim
