#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "stats/special.hpp"
#include "trace/index.hpp"

namespace hpcfail::sim {

FaultModel scripted_fault_model(std::vector<InjectedFault> faults) {
  FaultModel model;
  model.kind = FaultModelKind::scripted;
  model.scripted = std::move(faults);
  return model;
}

FaultModel renewal_fault_model(
    std::shared_ptr<const dist::Distribution> interarrival,
    std::shared_ptr<const dist::Distribution> repair) {
  HPCFAIL_EXPECTS(interarrival != nullptr,
                  "renewal fault model needs an interarrival distribution");
  FaultModel model;
  model.kind = FaultModelKind::renewal;
  model.interarrival = std::move(interarrival);
  model.repair = std::move(repair);
  return model;
}

FaultModel renewal_fault_model(const dist::FitReport& interarrival_fit,
                               const dist::FitReport& repair_fit) {
  HPCFAIL_EXPECTS(!interarrival_fit.empty(),
                  "interarrival fit report has no successful fit");
  std::shared_ptr<const dist::Distribution> repair;
  if (!repair_fit.empty()) repair = repair_fit.best().model->clone();
  return renewal_fault_model(interarrival_fit.best().model->clone(),
                             std::move(repair));
}

namespace {

/// Shared workload shape for the scripted scenarios: gang-scheduled
/// 4-wide jobs of a few hours each, enough of them that the fault window
/// overlaps execution.
void default_workload(CampaignScenario& scenario) {
  scenario.job_width = 4;
  scenario.job_work_seconds = 2.0 * 3600.0;
  scenario.job_count = 24;
  scenario.checkpoint_cost = 60.0;
  scenario.restart_cost = 120.0;
}

}  // namespace

CampaignScenario staggered_cascade_scenario(std::size_t node_count,
                                            double fail_fraction,
                                            double first_fault_at,
                                            double stagger_seconds,
                                            double repair_seconds) {
  HPCFAIL_EXPECTS(node_count > 0, "need at least one node");
  HPCFAIL_EXPECTS(fail_fraction > 0.0 && fail_fraction <= 1.0,
                  "fail fraction must be in (0,1]");
  HPCFAIL_EXPECTS(first_fault_at >= 0.0 && stagger_seconds >= 0.0,
                  "fault times must be non-negative");
  HPCFAIL_EXPECTS(repair_seconds >= 0.0, "repair must be non-negative");
  const auto failures = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(fail_fraction * static_cast<double>(node_count))));
  std::vector<InjectedFault> faults;
  faults.reserve(failures);
  for (std::size_t i = 0; i < failures; ++i) {
    // Spread the victims evenly over the cluster (distinct nodes as long
    // as failures <= node_count, which fail_fraction <= 1 guarantees).
    const auto node = static_cast<int>(i * node_count / failures);
    faults.push_back(
        {first_fault_at + static_cast<double>(i) * stagger_seconds, node,
         repair_seconds});
  }
  CampaignScenario scenario;
  scenario.name = "cascade";
  scenario.node_count = node_count;
  scenario.faults = scripted_fault_model(std::move(faults));
  default_workload(scenario);
  return scenario;
}

CampaignScenario correlated_burst_scenario(std::size_t node_count,
                                           std::size_t bursts,
                                           std::size_t burst_width,
                                           double burst_spacing,
                                           double repair_seconds) {
  HPCFAIL_EXPECTS(node_count > 0, "need at least one node");
  HPCFAIL_EXPECTS(bursts > 0 && burst_width > 0, "need at least one burst");
  HPCFAIL_EXPECTS(burst_width <= node_count,
                  "burst cannot exceed the cluster");
  HPCFAIL_EXPECTS(burst_spacing > 0.0, "burst spacing must be positive");
  HPCFAIL_EXPECTS(repair_seconds >= 0.0, "repair must be non-negative");
  std::vector<InjectedFault> faults;
  faults.reserve(bursts * burst_width);
  for (std::size_t b = 0; b < bursts; ++b) {
    const double when = static_cast<double>(b + 1) * burst_spacing;
    for (std::size_t j = 0; j < burst_width; ++j) {
      // All burst members fail at the exact same instant (the Fig 6c
      // zero-interarrival signature); victims rotate across bursts.
      const auto node =
          static_cast<int>((b * burst_width + j) % node_count);
      faults.push_back({when, node, repair_seconds});
    }
  }
  CampaignScenario scenario;
  scenario.name = "bursts";
  scenario.node_count = node_count;
  scenario.faults = scripted_fault_model(std::move(faults));
  default_workload(scenario);
  return scenario;
}

CampaignScenario repair_contention_scenario(std::size_t node_count,
                                            std::size_t crews) {
  HPCFAIL_EXPECTS(node_count > 0, "need at least one node");
  HPCFAIL_EXPECTS(crews > 0, "contention needs a finite crew count");
  CampaignScenario scenario;
  scenario.name = "contention";
  scenario.node_count = node_count;
  scenario.repair_concurrency = crews;
  // Dense faults (per-node MTBF of 12 h over a 3-day horizon) against a
  // skewed lognormal repair: the queue is the bottleneck by design.
  scenario.horizon_seconds = 3.0 * 86400.0;
  scenario.faults = renewal_fault_model(
      std::make_shared<dist::Weibull>(1.0, 12.0 * 3600.0),
      std::make_shared<dist::LogNormal>(dist::LogNormal::from_mean_median(
          2.0 * 3600.0, 1.0 * 3600.0)));
  default_workload(scenario);
  return scenario;
}

CampaignScenario weibull_renewal_scenario(std::size_t node_count,
                                          double mtbf_seconds,
                                          double horizon_seconds) {
  HPCFAIL_EXPECTS(node_count > 0, "need at least one node");
  HPCFAIL_EXPECTS(mtbf_seconds > 0.0, "MTBF must be positive");
  HPCFAIL_EXPECTS(horizon_seconds > 0.0, "horizon must be positive");
  CampaignScenario scenario;
  scenario.name = "renewal";
  scenario.node_count = node_count;
  scenario.horizon_seconds = horizon_seconds;
  // The paper's shapes: decreasing-hazard Weibull interarrivals (shape
  // 0.7) scaled to the requested MTBF (mean = scale * Gamma(1 + 1/k)),
  // Table 2's lognormal repairs.
  const double shape = 0.7;
  const double scale =
      mtbf_seconds /
      std::exp(stats::log_gamma_unchecked(1.0 + 1.0 / shape));
  scenario.faults = renewal_fault_model(
      std::make_shared<dist::Weibull>(shape, scale),
      std::make_shared<dist::LogNormal>(dist::LogNormal::from_mean_median(
          6.0 * 3600.0, 1.0 * 3600.0)));
  default_workload(scenario);
  return scenario;
}

CampaignScenario replay_scenario(const trace::FailureDataset& dataset,
                                 int system_id, std::size_t node_count) {
  const trace::DatasetView view = dataset.view().for_system(system_id);
  if (view.empty()) {
    throw ValidationError("replay scenario: system " +
                          std::to_string(system_id) +
                          " has no records in the dataset");
  }
  const trace::ColumnsView records = view.records();
  const std::span<const Seconds> starts = records.starts();
  const std::span<const Seconds> ends = records.ends();
  const std::span<const int> nodes = records.node_ids();
  if (node_count == 0) {
    const auto max_node = *std::max_element(nodes.begin(), nodes.end());
    node_count = static_cast<std::size_t>(max_node) + 1;
  }
  const Seconds origin = starts.front();
  std::vector<InjectedFault> faults;
  faults.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    faults.push_back(
        {static_cast<double>(starts[i] - origin),
         static_cast<int>(static_cast<std::size_t>(nodes[i]) % node_count),
         static_cast<double>(ends[i] - starts[i])});
  }
  CampaignScenario scenario;
  scenario.name = "replay-" + std::to_string(system_id);
  scenario.node_count = node_count;
  scenario.faults = scripted_fault_model(std::move(faults));
  default_workload(scenario);
  scenario.job_width =
      std::min<int>(scenario.job_width, static_cast<int>(node_count));
  return scenario;
}

std::vector<CampaignScenario> default_scenarios() {
  return {staggered_cascade_scenario(), correlated_burst_scenario(),
          repair_contention_scenario(), weibull_renewal_scenario()};
}

}  // namespace hpcfail::sim
