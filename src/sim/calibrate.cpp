#include "sim/calibrate.hpp"

#include <map>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"
#include "trace/index.hpp"

namespace hpcfail::sim {

std::vector<ClusterNodeConfig> calibrate_nodes(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog, int system_id) {
  hpcfail::obs::ScopedTimer timer("sim.calibrate");
  const trace::SystemInfo& sys = catalog.system(system_id);
  const trace::DatasetView scoped = dataset.view().for_system(system_id);
  HPCFAIL_EXPECTS(!scoped.empty(),
                  "calibration: system has no failures in the dataset");

  // Failure counts come off the index; repair times need the durations,
  // so gather those per node in one pass over the scoped span.
  const std::map<int, std::size_t> counts = scoped.failures_per_node();
  std::map<int, std::vector<double>> repairs;
  for (const trace::FailureRecord& r : scoped.records()) {
    repairs[r.node_id].push_back(r.downtime_minutes());
  }

  const std::vector<double> all_minutes = scoped.repair_times_minutes();
  const auto system_wide = hpcfail::stats::summarize(all_minutes);

  std::vector<ClusterNodeConfig> nodes;
  nodes.reserve(static_cast<std::size_t>(sys.nodes));
  for (int node = 0; node < sys.nodes; ++node) {
    const trace::NodeCategory& cat = sys.category_for_node(node);
    const double exposure =
        static_cast<double>(cat.production_end - cat.production_start);
    ClusterNodeConfig cfg;
    const auto it = counts.find(node);
    if (it != counts.end() && it->second > 0) {
      cfg.mtbf_seconds = exposure / static_cast<double>(it->second);
      const auto node_stats = hpcfail::stats::summarize(repairs.at(node));
      cfg.repair_mean_seconds = node_stats.mean * 60.0;
      cfg.repair_median_seconds = node_stats.median * 60.0;
    } else {
      cfg.mtbf_seconds = exposure;
      cfg.repair_mean_seconds = system_wide.mean * 60.0;
      cfg.repair_median_seconds = system_wide.median * 60.0;
    }
    // The simulator's lognormal repair sampler needs median < mean; a
    // single-repair node has median == mean, so nudge the median down.
    if (cfg.repair_median_seconds >= cfg.repair_mean_seconds) {
      cfg.repair_median_seconds = cfg.repair_mean_seconds * 0.999;
    }
    nodes.push_back(cfg);
  }
  return nodes;
}

}  // namespace hpcfail::sim
