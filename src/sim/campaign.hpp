// Fault-injection campaign engine: the simulator scaled from one run to
// a (scenario x policy x replicate) grid.
//
// A CampaignSpec is declarative: scenarios supply the cluster, workload
// and fault model (scripted lists, renewal draws from fitted families, or
// trace replay — sim/scenario.hpp); policies supply placement and
// checkpointing knobs (sim/policy.hpp). Campaign::run() executes every
// (cell, replicate) run as an independent shard on the common
// thread-pool and summarizes each cell with bootstrap confidence
// intervals.
//
// Determinism contract: run (cell, replicate) is simulated with
// Rng(mix_seed(spec.seed, cell, replicate)) and touches no shared
// mutable state, so campaign results are BIT-IDENTICAL at any thread
// count and across checkpoint-resume (asserted under the `campaign`
// ctest label). Summaries draw their bootstrap resamples from streams
// keyed on the campaign fingerprint, so they are equally reproducible.
//
// Resume semantics: a CampaignCheckpoint persists whole finished runs
// (text file, round-trip-exact doubles) plus the spec fingerprint. An
// interrupted shard is simply re-run from its forked stream — partial
// shard state never needs to be saved for the results to match an
// uninterrupted campaign exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/policy.hpp"
#include "sim/scenario.hpp"
#include "stats/bootstrap.hpp"

namespace hpcfail::sim {

/// The outcome of one simulated run (one replicate of one cell). All
/// work/overhead figures are node-seconds (wall seconds x gang width);
/// their sum equals the node-seconds the workload's nodes spent busy.
struct CampaignRunResult {
  std::uint32_t cell = 0;       ///< index into the scenario x policy grid
  std::uint32_t replicate = 0;  ///< replicate index within the cell

  std::uint64_t faults_injected = 0;  ///< faults delivered before finish
  std::uint64_t faults_absorbed = 0;  ///< delivered onto already-down nodes
  std::uint64_t interruptions = 0;    ///< job kills caused by faults

  double makespan = 0.0;             ///< seconds until the last job finished
  double useful_work = 0.0;          ///< node-seconds of retained progress
  double wasted_work = 0.0;          ///< node-seconds lost to kills
  double checkpoint_overhead = 0.0;  ///< node-seconds writing checkpoints
  double restart_overhead = 0.0;     ///< node-seconds reloading after kills
  double downtime = 0.0;             ///< node-seconds failed nodes spent down
  double repair_wait = 0.0;          ///< node-seconds spent queued for a crew

  /// Fraction of busy node-seconds that was not useful work; 0 for an
  /// all-zero result.
  double waste_fraction() const;

  friend bool operator==(const CampaignRunResult&,
                         const CampaignRunResult&) = default;
};

/// Per-cell statistical summary: bootstrap percentile CIs over the
/// cell's replicates for each headline metric.
struct CampaignCellSummary {
  std::string scenario;
  std::string policy;
  std::size_t runs = 0;
  std::uint64_t faults_injected = 0;  ///< summed over the cell's runs
  stats::BootstrapResult makespan;
  stats::BootstrapResult waste_fraction;
  stats::BootstrapResult interruptions;
};

/// A finished campaign: every run (ordered by (cell, replicate)) plus
/// one summary per (scenario, policy) cell.
struct CampaignResult {
  std::vector<CampaignRunResult> runs;
  std::vector<CampaignCellSummary> cells;

  std::uint64_t total_faults_injected() const;
};

/// Persistent campaign progress: the spec fingerprint it belongs to and
/// every run completed so far. Only whole runs are saved — see the
/// resume semantics above.
struct CampaignCheckpoint {
  std::uint64_t fingerprint = 0;
  std::size_t total_runs = 0;
  std::vector<CampaignRunResult> completed;  ///< sorted by (cell, replicate)

  bool complete() const { return completed.size() >= total_runs; }
};

/// Reads a checkpoint written by save_campaign_checkpoint. Throws
/// IoError if the file cannot be opened, ParseError on malformed
/// content.
CampaignCheckpoint load_campaign_checkpoint(const std::string& path);

/// Writes `checkpoint` to `path` (text, version-tagged, doubles printed
/// round-trip exact). Throws IoError on failure.
void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& checkpoint);

/// Declarative description of a whole campaign. Cells enumerate the
/// scenario x policy grid in row-major order (scenario-major).
struct CampaignSpec {
  std::vector<CampaignScenario> scenarios;
  std::vector<CampaignPolicy> policies;
  std::size_t runs_per_cell = 0;
  std::uint64_t seed = 42;
  stats::BootstrapOptions ci;  ///< summary CI replicates/confidence
};

/// Validates and executes a CampaignSpec. Immutable after construction;
/// run()/run_partial() are const and safe to call from one thread while
/// shards execute on the pool.
class Campaign {
 public:
  /// Validates the spec (non-empty grid, unique names, well-formed
  /// scenarios and policies); throws InvalidArgument on violations.
  explicit Campaign(CampaignSpec spec);

  const CampaignSpec& spec() const { return spec_; }
  std::size_t cell_count() const;
  std::size_t total_runs() const;

  /// Stable 64-bit digest of the spec (scenarios, policies, seed, run
  /// counts). Checkpoints carry it so a resume against a different spec
  /// is rejected instead of producing silently mixed results.
  std::uint64_t fingerprint() const { return fingerprint_; }

  const CampaignScenario& scenario_of_cell(std::size_t cell) const;
  const CampaignPolicy& policy_of_cell(std::size_t cell) const;

  /// The materialized injection schedule of one run, time-ascending.
  /// Scripted scenarios return the script; renewal scenarios sample each
  /// node's stream from the run's deterministic RNG. Exposed for tests
  /// and the CLI's --dry-run.
  std::vector<InjectedFault> schedule_for(std::size_t cell,
                                          std::size_t replicate) const;

  /// Simulates one run to completion. Deterministic function of
  /// (spec, cell, replicate) only.
  CampaignRunResult execute_run(std::size_t cell,
                                std::size_t replicate) const;

  /// Runs every run not already in `resume` (all of them when null) on
  /// the shared thread pool and returns the full, summarized campaign.
  /// Throws ValidationError if `resume` belongs to a different spec.
  CampaignResult run(const CampaignCheckpoint* resume = nullptr) const;

  /// Runs at most `max_new_runs` outstanding runs (in (cell, replicate)
  /// order) and returns the advanced checkpoint; does not summarize.
  /// Simulates a campaign interrupted mid-flight for resume testing and
  /// incremental execution.
  CampaignCheckpoint run_partial(
      std::size_t max_new_runs,
      const CampaignCheckpoint* resume = nullptr) const;

  /// Summarizes a *complete* checkpoint into a CampaignResult without
  /// re-running anything. Throws ValidationError on fingerprint mismatch
  /// or an incomplete checkpoint.
  CampaignResult summarize(const CampaignCheckpoint& checkpoint) const;

 private:
  CampaignResult assemble(std::vector<CampaignRunResult> runs) const;

  CampaignSpec spec_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace hpcfail::sim
