// Checkpoint/restart simulation -- the application the paper's statistics
// exist to serve ("The design and analysis of checkpoint strategies relies
// on certain statistical properties of failures").
//
// A long-running job checkpoints every `interval` seconds of useful work;
// node failures arrive as a renewal process drawn from any Distribution
// (exponential for the classical assumption, the fitted Weibull for the
// paper's reality); each failure costs the work since the last checkpoint,
// a repair downtime, and a restart. The simulator accounts every second,
// so "work conservation" is a testable invariant.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "dist/distribution.hpp"

namespace hpcfail::sim {

struct CheckpointConfig {
  double work_seconds = 0.0;      ///< useful work the job must complete
  double checkpoint_cost = 0.0;   ///< seconds per checkpoint write
  double restart_cost = 0.0;      ///< seconds to restore after repair
  double interval = 0.0;          ///< useful-work seconds between checkpoints
};

struct CheckpointStats {
  double wall_clock = 0.0;        ///< total elapsed time
  double useful_work = 0.0;       ///< == config.work_seconds on success
  double checkpoint_overhead = 0.0;
  double lost_work = 0.0;         ///< work redone after failures
  double restart_overhead = 0.0;
  double downtime = 0.0;          ///< time spent waiting for repair
  std::size_t failures = 0;

  /// Wall-clock divided by useful work (1.0 = failure-free, no overhead).
  double slowdown() const noexcept {
    return useful_work > 0.0 ? wall_clock / useful_work : 0.0;
  }
};

/// Simulates one job execution. `failure_process` supplies i.i.d. times
/// from one failure to the next (a renewal assumption; the fitted Weibull
/// makes them non-exponential); `repair` supplies repair durations, or
/// pass nullptr for instant repair. Throws InvalidArgument on
/// non-positive work/interval or negative costs.
CheckpointStats simulate_checkpoint(const hpcfail::dist::Distribution& failure_process,
                                    const hpcfail::dist::Distribution* repair,
                                    const CheckpointConfig& config,
                                    hpcfail::Rng& rng);

/// Averages `runs` independent simulations of the same configuration.
CheckpointStats simulate_checkpoint_mean(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair,
    const CheckpointConfig& config, hpcfail::Rng& rng, std::size_t runs);

/// Young's first-order optimal checkpoint interval sqrt(2 * C * MTBF).
/// Throws InvalidArgument unless both arguments are positive.
double young_interval(double mtbf_seconds, double checkpoint_cost);

/// Daly's higher-order refinement of Young's interval (valid for
/// C < 2 * MTBF; falls back to MTBF otherwise, per Daly 2006).
double daly_interval(double mtbf_seconds, double checkpoint_cost);

/// Sweeps candidate intervals by simulation and returns the one with the
/// lowest mean wall-clock. `intervals` must be non-empty.
double best_interval_by_simulation(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair, CheckpointConfig config,
    std::span<const double> intervals, hpcfail::Rng& rng,
    std::size_t runs_per_interval = 32);

/// A checkpoint-interval schedule: the useful-work length of the next
/// segment, as a function of operational time since the last failure
/// (or since the job started). Must return positive values.
using IntervalSchedule = std::function<double(double time_since_failure)>;

/// Like simulate_checkpoint() but with a per-segment interval chosen by
/// `schedule` -- the knob a decreasing-hazard failure process rewards:
/// checkpoint densely right after a failure (hazard is at its peak) and
/// stretch the interval as the hazard decays. config.interval is ignored.
CheckpointStats simulate_checkpoint_schedule(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair,
    const CheckpointConfig& config, const IntervalSchedule& schedule,
    hpcfail::Rng& rng);

/// The locally-optimal hazard-aware schedule: Young's formula evaluated
/// at the *current* hazard rate, tau(t) = sqrt(2 C / h(t)), clamped to
/// [min_interval, max_interval]. For a Weibull with shape < 1 this
/// starts short and grows -- the strategy the paper's decreasing-hazard
/// finding suggests. `process` must outlive the returned schedule.
IntervalSchedule hazard_aware_schedule(
    const hpcfail::dist::Distribution& process, double checkpoint_cost,
    double min_interval = 60.0, double max_interval = 86400.0);

}  // namespace hpcfail::sim
