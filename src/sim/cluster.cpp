#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "stats/special.hpp"

namespace hpcfail::sim {

namespace {

enum class EventKind { node_failure, node_repair, job_completion };

struct Event {
  double time = 0.0;
  EventKind kind = EventKind::node_failure;
  int node = -1;        // failure/repair events
  std::size_t job = 0;  // completion events
  std::uint64_t stamp = 0;  // attempt id; stale completions are dropped
  std::uint64_t seq = 0;    // tie-break for determinism

  bool operator>(const Event& other) const noexcept {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct NodeState {
  bool up = true;
  int running_job = -1;  // -1 = idle
  double mtbf = 0.0;
};

struct JobState {
  double remaining = 0.0;      // work left (from scratch on each restart)
  double started_at = -1.0;    // current attempt start, -1 if queued
  std::vector<int> nodes;
  bool done = false;
  std::uint64_t completion_seq = 0;  // invalidates stale completions
};

}  // namespace

std::vector<ClusterNodeConfig> heterogeneous_nodes(
    std::size_t node_count, double base_mtbf_seconds, double jitter_sigma,
    double hot_fraction, double hot_factor, std::uint64_t seed) {
  HPCFAIL_EXPECTS(node_count > 0, "need at least one node");
  HPCFAIL_EXPECTS(base_mtbf_seconds > 0.0, "MTBF must be positive");
  HPCFAIL_EXPECTS(hot_fraction >= 0.0 && hot_fraction <= 1.0,
                  "hot fraction must be in [0,1]");
  HPCFAIL_EXPECTS(hot_factor >= 1.0, "hot factor must be >= 1");
  hpcfail::Rng rng(seed);
  std::vector<ClusterNodeConfig> nodes;
  nodes.reserve(node_count);
  const auto hot_count =
      static_cast<std::size_t>(std::lround(hot_fraction *
                                           static_cast<double>(node_count)));
  for (std::size_t i = 0; i < node_count; ++i) {
    double u1;
    double u2;
    double s;
    do {
      u1 = rng.uniform(-1.0, 1.0);
      u2 = rng.uniform(-1.0, 1.0);
      s = u1 * u1 + u2 * u2;
    } while (s >= 1.0 || s == 0.0);
    const double z = u1 * std::sqrt(-2.0 * std::log(s) / s);
    double mtbf = base_mtbf_seconds * std::exp(jitter_sigma * z);
    if (i < hot_count) mtbf /= hot_factor;
    ClusterNodeConfig n;
    n.mtbf_seconds = mtbf;
    n.repair_mean_seconds = 6.0 * 3600.0;   // Table 2: mean ~6 hours
    n.repair_median_seconds = 1.0 * 3600.0; // median ~1 hour
    nodes.push_back(n);
  }
  return nodes;
}

ClusterStats simulate_cluster(const ClusterConfig& config,
                              hpcfail::Rng& rng) {
  HPCFAIL_EXPECTS(!config.nodes.empty(), "cluster has no nodes");
  HPCFAIL_EXPECTS(config.job_width >= 1 &&
                      static_cast<std::size_t>(config.job_width) <=
                          config.nodes.size(),
                  "job width must fit the cluster");
  HPCFAIL_EXPECTS(config.job_work_seconds > 0.0, "job work must be positive");
  HPCFAIL_EXPECTS(config.job_count > 0, "need at least one job");
  HPCFAIL_EXPECTS(config.failure_weibull_shape > 0.0,
                  "failure shape must be positive");
  HPCFAIL_EXPECTS(config.checkpoint_interval >= 0.0,
                  "checkpoint interval must be non-negative");
  for (const ClusterNodeConfig& n : config.nodes) {
    HPCFAIL_EXPECTS(n.mtbf_seconds > 0.0, "node MTBF must be positive");
    HPCFAIL_EXPECTS(n.repair_mean_seconds > n.repair_median_seconds &&
                        n.repair_median_seconds > 0.0,
                    "repair needs mean > median > 0");
  }

  const double k = config.failure_weibull_shape;

  std::vector<NodeState> nodes(config.nodes.size());
  std::vector<JobState> jobs(config.job_count);
  for (JobState& j : jobs) j.remaining = config.job_work_seconds;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  const auto sample_ttf = [&](int node) {
    // Weibull with the requested shape, scaled to the node's MTBF.
    const double mtbf = config.nodes[static_cast<std::size_t>(node)]
                            .mtbf_seconds;
    const double scale = mtbf / std::exp(hpcfail::stats::log_gamma_unchecked(1.0 + 1.0 / k));
    return scale * std::pow(-std::log(rng.uniform_pos()), 1.0 / k);
  };
  const auto sample_repair = [&](int node) {
    const ClusterNodeConfig& n = config.nodes[static_cast<std::size_t>(node)];
    return hpcfail::dist::LogNormal::from_mean_median(
               n.repair_mean_seconds, n.repair_median_seconds)
        .sample(rng);
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].mtbf = config.nodes[i].mtbf_seconds;
    events.push(Event{sample_ttf(static_cast<int>(i)),
                      EventKind::node_failure, static_cast<int>(i), 0, 0,
                      seq++});
  }

  std::size_t next_job = 0;       // next job never yet started
  std::vector<std::size_t> queue; // requeued jobs, FIFO
  std::size_t completed = 0;
  std::size_t running = 0;
  ClusterStats stats;
  double now = 0.0;

  const auto try_dispatch = [&]() {
    for (;;) {
      if (config.max_concurrent_jobs != 0 &&
          running >= config.max_concurrent_jobs) {
        return;
      }
      // Pick the next job to run (requeued first, then fresh).
      std::size_t job_id;
      if (!queue.empty()) {
        job_id = queue.front();
      } else if (next_job < jobs.size()) {
        job_id = next_job;
      } else {
        return;
      }

      std::vector<int> available;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].up && nodes[i].running_job < 0) {
          available.push_back(static_cast<int>(i));
        }
      }
      if (available.size() < static_cast<std::size_t>(config.job_width)) {
        return;
      }

      std::vector<int> chosen;
      if (config.policy == PlacementPolicy::reliability_ranked) {
        std::sort(available.begin(), available.end(),
                  [&nodes](int a, int b) {
                    const double ma = nodes[static_cast<std::size_t>(a)].mtbf;
                    const double mb = nodes[static_cast<std::size_t>(b)].mtbf;
                    if (ma != mb) return ma > mb;
                    return a < b;
                  });
        chosen.assign(available.begin(),
                      available.begin() + config.job_width);
      } else {
        for (int w = 0; w < config.job_width; ++w) {
          const auto pick = rng.uniform_index(available.size());
          chosen.push_back(available[pick]);
          available[pick] = available.back();
          available.pop_back();
        }
      }

      JobState& job = jobs[job_id];
      job.nodes = chosen;
      job.started_at = now;
      ++job.completion_seq;
      for (const int n : chosen) {
        nodes[static_cast<std::size_t>(n)].running_job =
            static_cast<int>(job_id);
      }
      events.push(Event{now + job.remaining, EventKind::job_completion, -1,
                        job_id, job.completion_seq, seq++});
      ++running;
      // Record the dequeue only after a successful dispatch.
      if (!queue.empty() && queue.front() == job_id) {
        queue.erase(queue.begin());
      } else {
        ++next_job;
      }
    }
  };

  try_dispatch();
  while (completed < jobs.size()) {
    HPCFAIL_ASSERT(!events.empty());
    const Event ev = events.top();
    events.pop();
    now = ev.time;

    switch (ev.kind) {
      case EventKind::job_completion: {
        JobState& job = jobs[ev.job];
        // Stale completion from an attempt killed by a failure?
        if (job.done || ev.stamp != job.completion_seq) break;
        job.done = true;
        --running;
        // All of the job's work was eventually useful, wherever the
        // attempts ran (checkpointed progress counts once).
        stats.useful_work += config.job_work_seconds *
                             static_cast<double>(config.job_width);
        for (const int n : job.nodes) {
          nodes[static_cast<std::size_t>(n)].running_job = -1;
        }
        job.nodes.clear();
        ++completed;
        try_dispatch();
        break;
      }
      case EventKind::node_failure: {
        NodeState& node = nodes[static_cast<std::size_t>(ev.node)];
        if (!node.up) break;  // stale (already down)
        node.up = false;
        ++stats.node_failures;
        if (node.running_job >= 0) {
          const auto job_id = static_cast<std::size_t>(node.running_job);
          JobState& job = jobs[job_id];
          ++stats.interruptions;
          // With checkpointing, progress up to the last completed
          // checkpoint survives the kill (write cost is not modeled at
          // this level; sim/checkpoint carries the per-job cost model).
          const double elapsed = now - job.started_at;
          double saved = 0.0;
          if (config.checkpoint_interval > 0.0) {
            saved = std::floor(elapsed / config.checkpoint_interval) *
                    config.checkpoint_interval;
            saved = std::min(saved, job.remaining);
          }
          job.remaining -= saved;
          stats.wasted_work += (elapsed - saved) *
                               static_cast<double>(config.job_width);
          for (const int n : job.nodes) {
            nodes[static_cast<std::size_t>(n)].running_job = -1;
          }
          job.nodes.clear();
          job.started_at = -1.0;
          ++job.completion_seq;  // invalidate the pending completion
          --running;
          queue.push_back(job_id);
        }
        events.push(Event{now + sample_repair(ev.node),
                          EventKind::node_repair, ev.node, 0, 0, seq++});
        break;
      }
      case EventKind::node_repair: {
        NodeState& node = nodes[static_cast<std::size_t>(ev.node)];
        node.up = true;
        events.push(Event{now + sample_ttf(ev.node),
                          EventKind::node_failure, ev.node, 0, 0, seq++});
        try_dispatch();
        break;
      }
    }
  }
  stats.makespan = now;
  return stats;
}

}  // namespace hpcfail::sim
