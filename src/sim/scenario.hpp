// Fault-injection scenarios: what a campaign throws at the cluster.
//
// A scenario fixes the environment half of a campaign cell — the cluster
// size, the workload, and above all the fault model that produces each
// run's injection schedule. Three model kinds cover the study's regimes:
//
//   * scripted — a fixed fault list, identical for every replicate. The
//     scenario library uses this for the staggered cascading mass-failure
//     pattern (21% of nodes failing over hours, SNIPPETS Snippet 2) and
//     for correlated simultaneous failures (the exact-zero interarrivals
//     of paper Fig 6c).
//   * renewal — each node draws its failure times from an interarrival
//     distribution (and repair durations from a repair distribution),
//     re-sampled per replicate from that replicate's deterministic RNG
//     stream. Plug in the best family of a fitted dist::FitReport to
//     inject faults "shaped like" an analyzed trace.
//   * replay is a scripted model harvested from a real trace: one
//     injected fault per observed failure record of one system, read
//     zero-copy through trace::DatasetIndex.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dist/distribution.hpp"
#include "dist/fit.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::sim {

/// One injected fault: node `node` fails `time` seconds into the run and
/// needs `repair_seconds` of repair service once a crew picks it up.
struct InjectedFault {
  double time = 0.0;
  int node = 0;
  double repair_seconds = 0.0;

  friend bool operator==(const InjectedFault&,
                         const InjectedFault&) = default;
};

enum class FaultModelKind {
  scripted,  ///< fixed fault list, shared by every replicate
  renewal,   ///< per-node renewal process, re-sampled per replicate
};

/// The fault source of a scenario. For `scripted`, `scripted` holds the
/// time-ascending schedule; for `renewal`, `interarrival` (required) and
/// `repair` (optional; null = instant repair) supply the per-node draws.
struct FaultModel {
  FaultModelKind kind = FaultModelKind::scripted;
  std::vector<InjectedFault> scripted;
  std::shared_ptr<const dist::Distribution> interarrival;
  std::shared_ptr<const dist::Distribution> repair;
};

/// Wraps a fixed schedule. The faults must be time-ascending (validated
/// by Campaign construction).
FaultModel scripted_fault_model(std::vector<InjectedFault> faults);

/// Renewal model from explicit distributions. `interarrival` must not be
/// null; `repair` may be (instant repair).
FaultModel renewal_fault_model(
    std::shared_ptr<const dist::Distribution> interarrival,
    std::shared_ptr<const dist::Distribution> repair);

/// Renewal model from fitted reports: clones the best-ranked family of
/// each. Throws InvalidArgument if `interarrival_fit` is empty; an empty
/// `repair_fit` yields instant repair.
FaultModel renewal_fault_model(const dist::FitReport& interarrival_fit,
                               const dist::FitReport& repair_fit);

/// One campaign scenario: topology, workload, and fault model. Names key
/// the campaign report cells, so they must be unique within a spec.
struct CampaignScenario {
  std::string name;
  std::size_t node_count = 0;
  /// Renewal injection horizon: no faults are scheduled past this run
  /// time. Ignored for scripted models (the script bounds itself).
  double horizon_seconds = 0.0;
  /// Simultaneous repairs in service; 0 = unlimited crews. Failed nodes
  /// beyond the limit queue FIFO (repair-queue contention).
  std::size_t repair_concurrency = 0;
  FaultModel faults;
  // The workload every policy is measured against.
  int job_width = 1;
  double job_work_seconds = 0.0;
  std::size_t job_count = 0;
  double checkpoint_cost = 0.0;  ///< seconds per checkpoint write
  double restart_cost = 0.0;     ///< seconds to reload after a kill
};

/// Snippet 2's stress shape: `fail_fraction` of the nodes fail at
/// `stagger_seconds` intervals starting at `first_fault_at`, each down
/// for `repair_seconds`. Distinct nodes, evenly spread over the cluster.
CampaignScenario staggered_cascade_scenario(
    std::size_t node_count = 72, double fail_fraction = 0.21,
    double first_fault_at = 3000.0, double stagger_seconds = 500.0,
    double repair_seconds = 4.0 * 3600.0);

/// Paper Fig 6c's correlated simultaneous failures: `bursts` bursts,
/// `burst_width` nodes failing at the exact same instant per burst.
CampaignScenario correlated_burst_scenario(
    std::size_t node_count = 64, std::size_t bursts = 6,
    std::size_t burst_width = 8, double burst_spacing = 2.0 * 3600.0,
    double repair_seconds = 2.0 * 3600.0);

/// Repair-queue contention: a dense renewal fault stream against a small
/// fixed crew count, so failed nodes queue for service.
CampaignScenario repair_contention_scenario(std::size_t node_count = 48,
                                            std::size_t crews = 2);

/// Renewal scenario with the paper's shapes: Weibull(0.7) interarrivals
/// and lognormal repairs (Table 2's mean 6 h, median 1 h).
CampaignScenario weibull_renewal_scenario(std::size_t node_count = 64,
                                          double mtbf_seconds = 10.0 *
                                                                86400.0,
                                          double horizon_seconds = 60.0 *
                                                                   86400.0);

/// Replay of one trace system's observed failures through the dataset
/// index: one injected fault per record, times offset to the system's
/// first failure, repair = the record's downtime. Trace node ids are
/// mapped onto [0, node_count) by modulo; node_count = 0 sizes the
/// cluster to the largest observed node id + 1. Throws ValidationError
/// if the system has no records.
CampaignScenario replay_scenario(const trace::FailureDataset& dataset,
                                 int system_id,
                                 std::size_t node_count = 0);

/// The library the campaign CLI exposes: cascade, bursts, contention,
/// and the Weibull renewal scenario.
std::vector<CampaignScenario> default_scenarios();

}  // namespace hpcfail::sim
