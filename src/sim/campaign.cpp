#include "sim/campaign.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <queue>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace hpcfail::sim {

namespace {

// ---------------------------------------------------------------------
// Spec fingerprinting: FNV-1a over a canonical byte walk of the spec.
// Renewal distributions contribute their describe() string — the full
// printed parameterization — which is plenty to tell two specs apart.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void hash_u64(std::uint64_t& h, std::uint64_t v) { hash_bytes(h, &v, 8); }

void hash_double(std::uint64_t& h, double v) {
  hash_u64(h, std::bit_cast<std::uint64_t>(v));
}

void hash_string(std::uint64_t& h, const std::string& s) {
  hash_u64(h, s.size());
  hash_bytes(h, s.data(), s.size());
}

std::uint64_t fingerprint_spec(const CampaignSpec& spec) {
  std::uint64_t h = kFnvOffset;
  hash_u64(h, 1);  // fingerprint format version
  hash_u64(h, spec.seed);
  hash_u64(h, spec.runs_per_cell);
  hash_u64(h, spec.ci.replicates);
  hash_double(h, spec.ci.confidence);
  hash_u64(h, spec.scenarios.size());
  for (const CampaignScenario& s : spec.scenarios) {
    hash_string(h, s.name);
    hash_u64(h, s.node_count);
    hash_double(h, s.horizon_seconds);
    hash_u64(h, s.repair_concurrency);
    hash_u64(h, static_cast<std::uint64_t>(s.faults.kind));
    if (s.faults.kind == FaultModelKind::scripted) {
      hash_u64(h, s.faults.scripted.size());
      for (const InjectedFault& f : s.faults.scripted) {
        hash_double(h, f.time);
        hash_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(f.node)));
        hash_double(h, f.repair_seconds);
      }
    } else {
      hash_string(h, s.faults.interarrival->describe());
      hash_string(h, s.faults.repair ? s.faults.repair->describe()
                                     : std::string("none"));
    }
    hash_u64(h, static_cast<std::uint64_t>(s.job_width));
    hash_double(h, s.job_work_seconds);
    hash_u64(h, s.job_count);
    hash_double(h, s.checkpoint_cost);
    hash_double(h, s.restart_cost);
  }
  hash_u64(h, spec.policies.size());
  for (const CampaignPolicy& p : spec.policies) {
    hash_string(h, p.name);
    hash_u64(h, static_cast<std::uint64_t>(p.placement));
    hash_double(h, p.checkpoint_interval);
  }
  return h;
}

void validate_spec(const CampaignSpec& spec) {
  HPCFAIL_EXPECTS(!spec.scenarios.empty(),
                  "campaign needs at least one scenario");
  HPCFAIL_EXPECTS(!spec.policies.empty(), "campaign needs at least one policy");
  HPCFAIL_EXPECTS(spec.runs_per_cell > 0,
                  "campaign needs at least one run per cell");
  std::vector<std::string> names;
  for (const CampaignScenario& s : spec.scenarios) {
    HPCFAIL_EXPECTS(!s.name.empty(), "scenario names must be non-empty");
    HPCFAIL_EXPECTS(std::find(names.begin(), names.end(), s.name) ==
                        names.end(),
                    "scenario names must be unique within a campaign");
    names.push_back(s.name);
    HPCFAIL_EXPECTS(s.node_count > 0, "scenario needs at least one node");
    HPCFAIL_EXPECTS(s.job_count > 0, "scenario needs at least one job");
    HPCFAIL_EXPECTS(s.job_work_seconds > 0.0, "job work must be positive");
    HPCFAIL_EXPECTS(s.job_width >= 1 &&
                        static_cast<std::size_t>(s.job_width) <= s.node_count,
                    "job width must fit the cluster");
    HPCFAIL_EXPECTS(s.checkpoint_cost >= 0.0 && s.restart_cost >= 0.0,
                    "checkpoint/restart costs must be non-negative");
    if (s.faults.kind == FaultModelKind::scripted) {
      double last = 0.0;
      for (const InjectedFault& f : s.faults.scripted) {
        HPCFAIL_EXPECTS(f.time >= last, "scripted faults must be time-ascending");
        HPCFAIL_EXPECTS(f.node >= 0 &&
                            static_cast<std::size_t>(f.node) < s.node_count,
                        "scripted fault node out of range");
        HPCFAIL_EXPECTS(f.repair_seconds >= 0.0,
                        "scripted repair must be non-negative");
        last = f.time;
      }
    } else {
      HPCFAIL_EXPECTS(s.faults.interarrival != nullptr,
                      "renewal scenario needs an interarrival distribution");
      HPCFAIL_EXPECTS(s.horizon_seconds > 0.0,
                      "renewal scenario needs a positive horizon");
    }
  }
  names.clear();
  for (const CampaignPolicy& p : spec.policies) {
    HPCFAIL_EXPECTS(!p.name.empty(), "policy names must be non-empty");
    HPCFAIL_EXPECTS(std::find(names.begin(), names.end(), p.name) ==
                        names.end(),
                    "policy names must be unique within a campaign");
    names.push_back(p.name);
    HPCFAIL_EXPECTS(p.checkpoint_interval >= 0.0,
                    "checkpoint interval must be non-negative");
  }
}

/// Materializes one run's injection schedule. Scripted models return the
/// script; renewal models draw each node's stream from the run RNG via
/// fork (const — the caller's generator state is untouched, so placement
/// draws later in the run are independent of schedule length).
std::vector<InjectedFault> materialize_schedule(const CampaignScenario& scen,
                                                const Rng& run_rng) {
  if (scen.faults.kind == FaultModelKind::scripted) {
    return scen.faults.scripted;
  }
  std::vector<InjectedFault> out;
  for (std::size_t node = 0; node < scen.node_count; ++node) {
    Rng stream = run_rng.fork(static_cast<std::uint64_t>(node));
    double t = 0.0;
    for (;;) {
      t += scen.faults.interarrival->sample(stream);
      if (!(t <= scen.horizon_seconds)) break;
      double repair = 0.0;
      if (scen.faults.repair) {
        repair = std::max(0.0, scen.faults.repair->sample(stream));
      }
      out.push_back({t, static_cast<int>(node), repair});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const InjectedFault& a, const InjectedFault& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.node < b.node;
                   });
  return out;
}

// ---------------------------------------------------------------------
// The per-run simulation engine. Event-driven with the same (time, seq)
// total order as sim/cluster.cpp: ties are broken by insertion order, so
// a fault landing at a job's exact completion instant (the fault events
// are inserted first) kills the job.

enum class EventKind : std::uint8_t { fault, repair_done, job_complete };

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::fault;
  int arg = 0;  ///< fault: schedule index; repair_done: node; complete: job
  std::uint64_t stamp = 0;  ///< job attempt stamp (completion staleness)
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct QueuedRepair {
  double fault_time = 0.0;
  int node = 0;
  double duration = 0.0;
};

class RunEngine {
 public:
  RunEngine(const CampaignScenario& scen, const CampaignPolicy& pol,
            std::vector<InjectedFault> schedule, Rng rng)
      : scen_(scen), pol_(pol), schedule_(std::move(schedule)),
        rng_(rng), down_(scen.node_count, 0),
        node_job_(scen.node_count, -1), sched_faults_(scen.node_count, 0),
        jobs_(scen.job_count) {
    for (const InjectedFault& f : schedule_) {
      ++sched_faults_[static_cast<std::size_t>(f.node)];
    }
    for (Job& job : jobs_) job.remaining = scen.job_work_seconds;
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      pending_.push_back(static_cast<int>(j));
    }
  }

  CampaignRunResult run() {
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
      push_event(schedule_[i].time, EventKind::fault, static_cast<int>(i), 0);
    }
    try_dispatch(0.0);
    while (!events_.empty() && jobs_done_ < jobs_.size()) {
      const Event e = events_.top();
      events_.pop();
      switch (e.kind) {
        case EventKind::fault:
          handle_fault(e.time, schedule_[static_cast<std::size_t>(e.arg)]);
          break;
        case EventKind::repair_done:
          handle_repair_done(e.time, e.arg);
          break;
        case EventKind::job_complete:
          handle_complete(e.time, e.arg, e.stamp);
          break;
      }
    }
    // Down nodes always have a repair event in flight or queued behind a
    // busy crew, so the queue can only drain with jobs still pending if
    // the engine is buggy.
    HPCFAIL_ASSERT(jobs_done_ == jobs_.size());
    return out_;
  }

 private:
  struct Job {
    double remaining = 0.0;        ///< work left at the next dispatch
    double pending_restart = 0.0;  ///< reload cost owed at the next dispatch
    double attempt_start = 0.0;
    double attempt_work = 0.0;     ///< `remaining` when the attempt began
    double attempt_restart = 0.0;  ///< `pending_restart` when it began
    std::vector<int> nodes;
    std::uint64_t stamp = 0;  ///< bumped per dispatch/kill; stales events
    bool running = false;
    bool done = false;
  };

  void push_event(double time, EventKind kind, int arg, std::uint64_t stamp) {
    events_.push(Event{time, next_seq_++, kind, arg, stamp});
  }

  /// Wall seconds attempt `work` + `restart` takes uninterrupted: a
  /// checkpoint write follows every full interval except the last
  /// segment.
  double attempt_wall(double work, double restart) const {
    const double tau = pol_.checkpoint_interval;
    double writes = 0.0;
    if (tau > 0.0) writes = std::max(0.0, std::ceil(work / tau) - 1.0);
    return restart + work + writes * scen_.checkpoint_cost;
  }

  void try_dispatch(double now) {
    while (!pending_.empty()) {
      candidates_.clear();
      for (std::size_t n = 0; n < scen_.node_count; ++n) {
        if (!down_[n] && node_job_[n] < 0) {
          candidates_.push_back(static_cast<int>(n));
        }
      }
      const auto width = static_cast<std::size_t>(scen_.job_width);
      if (candidates_.size() < width) return;
      const int j = pending_.front();
      pending_.pop_front();
      if (pol_.placement == PlacementPolicy::reliability_ranked) {
        // Prefer the nodes with the fewest scheduled faults (an operator
        // who knows the per-node rates); ties by node id.
        std::sort(candidates_.begin(), candidates_.end(),
                  [this](int a, int b) {
                    const auto fa = sched_faults_[static_cast<std::size_t>(a)];
                    const auto fb = sched_faults_[static_cast<std::size_t>(b)];
                    if (fa != fb) return fa < fb;
                    return a < b;
                  });
      } else {
        // Partial Fisher-Yates over the ascending candidate list: the
        // only RNG consumption in the engine, one draw per chosen node.
        for (std::size_t i = 0; i < width; ++i) {
          const std::size_t pick =
              i + static_cast<std::size_t>(
                      rng_.uniform_index(candidates_.size() - i));
          std::swap(candidates_[i], candidates_[pick]);
        }
      }
      Job& job = jobs_[static_cast<std::size_t>(j)];
      job.nodes.assign(candidates_.begin(),
                       candidates_.begin() + static_cast<std::ptrdiff_t>(width));
      std::sort(job.nodes.begin(), job.nodes.end());
      for (const int n : job.nodes) node_job_[static_cast<std::size_t>(n)] = j;
      job.attempt_start = now;
      job.attempt_work = job.remaining;
      job.attempt_restart = job.pending_restart;
      job.running = true;
      ++job.stamp;
      push_event(now + attempt_wall(job.attempt_work, job.attempt_restart),
                 EventKind::job_complete, j, job.stamp);
    }
  }

  void begin_repair(double now, double fault_time, int node, double duration) {
    out_.repair_wait += now - fault_time;
    out_.downtime += (now - fault_time) + duration;
    push_event(now + duration, EventKind::repair_done, node, 0);
  }

  void handle_fault(double now, const InjectedFault& fault) {
    ++out_.faults_injected;
    const auto n = static_cast<std::size_t>(fault.node);
    if (down_[n]) {
      // A fault on an already-down node is absorbed: it neither extends
      // the repair in progress nor queues a second one.
      ++out_.faults_absorbed;
      return;
    }
    down_[n] = 1;
    if (scen_.repair_concurrency == 0 ||
        crews_busy_ < scen_.repair_concurrency) {
      ++crews_busy_;
      begin_repair(now, now, fault.node, fault.repair_seconds);
    } else {
      repair_queue_.push_back({now, fault.node, fault.repair_seconds});
    }
    const int j = node_job_[n];
    if (j >= 0) kill_job(now, j);
  }

  void kill_job(double now, int j) {
    Job& job = jobs_[static_cast<std::size_t>(j)];
    const auto w = static_cast<double>(job.nodes.size());
    const double elapsed = now - job.attempt_start;
    // Split the attempt's elapsed node-seconds into restart phase, saved
    // work, checkpoint writes, and the lost tail since the last
    // checkpoint. e1 + e2 == elapsed, and saved + writes*cost +
    // (e2 - k*(tau+cost)) == e2, so the four buckets sum exactly to
    // elapsed * width.
    const double e1 = std::min(elapsed, job.attempt_restart);
    const double e2 = elapsed - e1;
    const double tau = pol_.checkpoint_interval;
    double saved = 0.0;
    double write_cost = 0.0;
    if (tau > 0.0 && e2 > 0.0) {
      const double cycles = std::floor(e2 / (tau + scen_.checkpoint_cost));
      saved = std::min(cycles * tau, job.attempt_work);
      write_cost = cycles * scen_.checkpoint_cost;
    }
    out_.restart_overhead += e1 * w;
    out_.useful_work += saved * w;
    out_.checkpoint_overhead += write_cost * w;
    out_.wasted_work += (e2 - saved - write_cost) * w;
    ++out_.interruptions;
    job.remaining = job.attempt_work - saved;
    job.pending_restart = scen_.restart_cost;
    job.running = false;
    ++job.stamp;  // stales the scheduled completion event
    for (const int n : job.nodes) node_job_[static_cast<std::size_t>(n)] = -1;
    job.nodes.clear();
    pending_.push_back(j);
    try_dispatch(now);
  }

  void handle_repair_done(double now, int node) {
    down_[static_cast<std::size_t>(node)] = 0;
    --crews_busy_;
    if (!repair_queue_.empty()) {
      const QueuedRepair next = repair_queue_.front();
      repair_queue_.pop_front();
      ++crews_busy_;
      begin_repair(now, next.fault_time, next.node, next.duration);
    }
    try_dispatch(now);
  }

  void handle_complete(double now, int j, std::uint64_t stamp) {
    Job& job = jobs_[static_cast<std::size_t>(j)];
    if (!job.running || job.stamp != stamp) return;  // stale attempt
    const auto w = static_cast<double>(job.nodes.size());
    const double tau = pol_.checkpoint_interval;
    double writes = 0.0;
    if (tau > 0.0) writes = std::max(0.0, std::ceil(job.attempt_work / tau) - 1.0);
    out_.useful_work += job.attempt_work * w;
    out_.checkpoint_overhead += writes * scen_.checkpoint_cost * w;
    out_.restart_overhead += job.attempt_restart * w;
    job.running = false;
    job.done = true;
    for (const int n : job.nodes) node_job_[static_cast<std::size_t>(n)] = -1;
    job.nodes.clear();
    ++jobs_done_;
    out_.makespan = now;
    try_dispatch(now);
  }

  const CampaignScenario& scen_;
  const CampaignPolicy& pol_;
  std::vector<InjectedFault> schedule_;
  Rng rng_;
  CampaignRunResult out_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t next_seq_ = 0;

  std::vector<char> down_;
  std::vector<int> node_job_;
  std::vector<std::uint64_t> sched_faults_;
  std::vector<int> candidates_;

  std::vector<Job> jobs_;
  std::deque<int> pending_;
  std::size_t jobs_done_ = 0;

  std::size_t crews_busy_ = 0;
  std::deque<QueuedRepair> repair_queue_;
};

/// %.17g — the shortest format that round-trips every finite double.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

double parse_double(const std::string& token, const std::string& path) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError("campaign checkpoint " + path + ": bad number '" +
                     token + "'");
  }
}

std::uint64_t parse_u64(const std::string& token, const std::string& path) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError("campaign checkpoint " + path + ": bad integer '" +
                     token + "'");
  }
}

}  // namespace

double CampaignRunResult::waste_fraction() const {
  const double busy =
      useful_work + wasted_work + checkpoint_overhead + restart_overhead;
  if (busy <= 0.0) return 0.0;
  return (busy - useful_work) / busy;
}

std::uint64_t CampaignResult::total_faults_injected() const {
  std::uint64_t total = 0;
  for (const CampaignRunResult& r : runs) total += r.faults_injected;
  return total;
}

void save_campaign_checkpoint(const std::string& path,
                              const CampaignCheckpoint& checkpoint) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open campaign checkpoint for write: " + path);
  out << "hpcfail-campaign-checkpoint v1\n";
  out << "fingerprint " << checkpoint.fingerprint << "\n";
  out << "total_runs " << checkpoint.total_runs << "\n";
  out << "completed " << checkpoint.completed.size() << "\n";
  for (const CampaignRunResult& r : checkpoint.completed) {
    out << "run " << r.cell << ' ' << r.replicate << ' ' << r.faults_injected
        << ' ' << r.faults_absorbed << ' ' << r.interruptions << ' '
        << format_double(r.makespan) << ' ' << format_double(r.useful_work)
        << ' ' << format_double(r.wasted_work) << ' '
        << format_double(r.checkpoint_overhead) << ' '
        << format_double(r.restart_overhead) << ' '
        << format_double(r.downtime) << ' ' << format_double(r.repair_wait)
        << "\n";
  }
  out.flush();
  if (!out) throw IoError("failed writing campaign checkpoint: " + path);
}

CampaignCheckpoint load_campaign_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open campaign checkpoint: " + path);
  std::string line;
  if (!std::getline(in, line) || line != "hpcfail-campaign-checkpoint v1") {
    throw ParseError("campaign checkpoint " + path + ": bad header");
  }
  const auto expect_field = [&](const char* key) {
    if (!std::getline(in, line)) {
      throw ParseError("campaign checkpoint " + path + ": truncated");
    }
    std::istringstream fields(line);
    std::string name, value, extra;
    if (!(fields >> name >> value) || name != key || (fields >> extra)) {
      throw ParseError("campaign checkpoint " + path + ": expected '" +
                       key + "' line");
    }
    return value;
  };
  CampaignCheckpoint checkpoint;
  checkpoint.fingerprint = parse_u64(expect_field("fingerprint"), path);
  checkpoint.total_runs =
      static_cast<std::size_t>(parse_u64(expect_field("total_runs"), path));
  const auto completed =
      static_cast<std::size_t>(parse_u64(expect_field("completed"), path));
  checkpoint.completed.reserve(completed);
  for (std::size_t i = 0; i < completed; ++i) {
    if (!std::getline(in, line)) {
      throw ParseError("campaign checkpoint " + path + ": truncated run list");
    }
    std::istringstream fields(line);
    std::string tag;
    std::string token[12];
    if (!(fields >> tag) || tag != "run") {
      throw ParseError("campaign checkpoint " + path + ": expected 'run' line");
    }
    for (auto& t : token) {
      if (!(fields >> t)) {
        throw ParseError("campaign checkpoint " + path + ": short run line");
      }
    }
    std::string extra;
    if (fields >> extra) {
      throw ParseError("campaign checkpoint " + path + ": long run line");
    }
    CampaignRunResult r;
    r.cell = static_cast<std::uint32_t>(parse_u64(token[0], path));
    r.replicate = static_cast<std::uint32_t>(parse_u64(token[1], path));
    r.faults_injected = parse_u64(token[2], path);
    r.faults_absorbed = parse_u64(token[3], path);
    r.interruptions = parse_u64(token[4], path);
    r.makespan = parse_double(token[5], path);
    r.useful_work = parse_double(token[6], path);
    r.wasted_work = parse_double(token[7], path);
    r.checkpoint_overhead = parse_double(token[8], path);
    r.restart_overhead = parse_double(token[9], path);
    r.downtime = parse_double(token[10], path);
    r.repair_wait = parse_double(token[11], path);
    checkpoint.completed.push_back(r);
  }
  return checkpoint;
}

Campaign::Campaign(CampaignSpec spec) : spec_(std::move(spec)) {
  validate_spec(spec_);
  fingerprint_ = fingerprint_spec(spec_);
}

std::size_t Campaign::cell_count() const {
  return spec_.scenarios.size() * spec_.policies.size();
}

std::size_t Campaign::total_runs() const {
  return cell_count() * spec_.runs_per_cell;
}

const CampaignScenario& Campaign::scenario_of_cell(std::size_t cell) const {
  HPCFAIL_EXPECTS(cell < cell_count(), "cell index out of range");
  return spec_.scenarios[cell / spec_.policies.size()];
}

const CampaignPolicy& Campaign::policy_of_cell(std::size_t cell) const {
  HPCFAIL_EXPECTS(cell < cell_count(), "cell index out of range");
  return spec_.policies[cell % spec_.policies.size()];
}

std::vector<InjectedFault> Campaign::schedule_for(std::size_t cell,
                                                  std::size_t replicate) const {
  HPCFAIL_EXPECTS(cell < cell_count(), "cell index out of range");
  HPCFAIL_EXPECTS(replicate < spec_.runs_per_cell,
                  "replicate index out of range");
  const Rng run_rng(mix_seed(spec_.seed, cell, replicate));
  return materialize_schedule(scenario_of_cell(cell), run_rng);
}

CampaignRunResult Campaign::execute_run(std::size_t cell,
                                        std::size_t replicate) const {
  HPCFAIL_EXPECTS(cell < cell_count(), "cell index out of range");
  HPCFAIL_EXPECTS(replicate < spec_.runs_per_cell,
                  "replicate index out of range");
  const auto started = std::chrono::steady_clock::now();
  const Rng run_rng(mix_seed(spec_.seed, cell, replicate));
  const CampaignScenario& scen = scenario_of_cell(cell);
  RunEngine engine(scen, policy_of_cell(cell),
                   materialize_schedule(scen, run_rng), run_rng);
  CampaignRunResult result = engine.run();
  result.cell = static_cast<std::uint32_t>(cell);
  result.replicate = static_cast<std::uint32_t>(replicate);
  if (obs::enabled()) {
    // Timing is observe-only (the engine never reads the clock), so the
    // results stay bit-identical with obs on or off.
    const std::chrono::duration<double, std::milli> wall =
        std::chrono::steady_clock::now() - started;
    obs::Registry& reg = obs::registry();
    reg.counter("campaign.faults_injected").add(result.faults_injected);
    reg.gauge("campaign.shard_ms").add(wall.count());
  }
  return result;
}

namespace {

/// Places `resume`'s runs into `slots`/`have` after validating that it
/// belongs to this campaign. Counts the resume in obs.
void absorb_checkpoint(const Campaign& campaign,
                       const CampaignCheckpoint& resume,
                       std::vector<CampaignRunResult>& slots,
                       std::vector<char>& have) {
  if (resume.fingerprint != campaign.fingerprint()) {
    throw ValidationError(
        "campaign checkpoint belongs to a different spec "
        "(fingerprint mismatch)");
  }
  if (resume.total_runs != campaign.total_runs()) {
    throw ValidationError("campaign checkpoint run-count mismatch");
  }
  const std::size_t rpc = campaign.spec().runs_per_cell;
  for (const CampaignRunResult& r : resume.completed) {
    if (r.cell >= campaign.cell_count() || r.replicate >= rpc) {
      throw ValidationError("campaign checkpoint run outside the grid");
    }
    const std::size_t idx = r.cell * rpc + r.replicate;
    if (have[idx]) {
      throw ValidationError("campaign checkpoint has duplicate runs");
    }
    slots[idx] = r;
    have[idx] = 1;
  }
  if (!resume.completed.empty() && obs::enabled()) {
    obs::registry().counter("campaign.resumes").add(1);
  }
}

}  // namespace

CampaignResult Campaign::run(const CampaignCheckpoint* resume) const {
  const std::size_t n = total_runs();
  const std::size_t rpc = spec_.runs_per_cell;
  std::vector<CampaignRunResult> slots(n);
  std::vector<char> have(n, 0);
  if (resume) absorb_checkpoint(*this, *resume, slots, have);
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    if (!have[i]) todo.push_back(i);
  }
  const auto fresh =
      parallel_map(todo.size(), [this, &todo, rpc](std::size_t i) {
        const std::size_t idx = todo[i];
        return execute_run(idx / rpc, idx % rpc);
      });
  for (std::size_t i = 0; i < todo.size(); ++i) slots[todo[i]] = fresh[i];
  return assemble(std::move(slots));
}

CampaignCheckpoint Campaign::run_partial(
    std::size_t max_new_runs, const CampaignCheckpoint* resume) const {
  const std::size_t n = total_runs();
  const std::size_t rpc = spec_.runs_per_cell;
  std::vector<CampaignRunResult> slots(n);
  std::vector<char> have(n, 0);
  if (resume) absorb_checkpoint(*this, *resume, slots, have);
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n && todo.size() < max_new_runs; ++i) {
    if (!have[i]) todo.push_back(i);
  }
  const auto fresh =
      parallel_map(todo.size(), [this, &todo, rpc](std::size_t i) {
        const std::size_t idx = todo[i];
        return execute_run(idx / rpc, idx % rpc);
      });
  for (std::size_t i = 0; i < todo.size(); ++i) {
    slots[todo[i]] = fresh[i];
    have[todo[i]] = 1;
  }
  CampaignCheckpoint out;
  out.fingerprint = fingerprint_;
  out.total_runs = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (have[i]) out.completed.push_back(slots[i]);
  }
  return out;
}

CampaignResult Campaign::summarize(const CampaignCheckpoint& checkpoint) const {
  const std::size_t n = total_runs();
  std::vector<CampaignRunResult> slots(n);
  std::vector<char> have(n, 0);
  absorb_checkpoint(*this, checkpoint, slots, have);
  if (!checkpoint.complete()) {
    throw ValidationError("cannot summarize an incomplete campaign checkpoint");
  }
  return assemble(std::move(slots));
}

CampaignResult Campaign::assemble(std::vector<CampaignRunResult> runs) const {
  CampaignResult result;
  result.runs = std::move(runs);
  const std::size_t rpc = spec_.runs_per_cell;
  // Plain accumulation mean, bit-identical to the testkit reference
  // aggregate (and to stats::mean).
  const stats::Statistic mean_stat = [](std::span<const double> xs) {
    double sum = 0.0;
    for (const double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
  };
  result.cells.reserve(cell_count());
  for (std::size_t cell = 0; cell < cell_count(); ++cell) {
    CampaignCellSummary summary;
    summary.scenario = scenario_of_cell(cell).name;
    summary.policy = policy_of_cell(cell).name;
    summary.runs = rpc;
    std::vector<double> makespans, wastes, interrupts;
    makespans.reserve(rpc);
    wastes.reserve(rpc);
    interrupts.reserve(rpc);
    for (std::size_t rep = 0; rep < rpc; ++rep) {
      const CampaignRunResult& r = result.runs[cell * rpc + rep];
      summary.faults_injected += r.faults_injected;
      makespans.push_back(r.makespan);
      wastes.push_back(r.waste_fraction());
      interrupts.push_back(static_cast<double>(r.interruptions));
    }
    // Resample streams are keyed on (fingerprint, cell, metric), so the
    // summaries are as reproducible as the runs themselves.
    const auto boot = [&](std::uint64_t metric, std::span<const double> xs) {
      Rng rng(mix_seed(fingerprint_, cell, metric));
      return stats::bootstrap(xs, mean_stat, rng, spec_.ci);
    };
    summary.makespan = boot(0, makespans);
    summary.waste_fraction = boot(1, wastes);
    summary.interruptions = boot(2, interrupts);
    result.cells.push_back(std::move(summary));
  }
  return result;
}

}  // namespace hpcfail::sim
