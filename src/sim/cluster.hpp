// Event-driven cluster availability simulator.
//
// Section 5.1's motivation made executable: "Knowledge on how failure
// rates vary across the nodes in a system can be utilized in job
// scheduling, for instance by assigning critical jobs or jobs with high
// recovery time to more reliable nodes." Nodes fail (Weibull or
// exponential renewals) and are repaired (lognormal); a FIFO queue of
// fixed-width gang-scheduled jobs runs under a placement policy; a node
// failure kills every job sharing the node, which restarts from scratch.
// The reliability-ranked policy prefers the nodes with the longest MTBF --
// the policy the paper's heterogeneous per-node rates (Fig 3a) reward.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hpcfail::sim {

/// Per-node reliability parameters.
struct ClusterNodeConfig {
  double mtbf_seconds = 0.0;        ///< mean time between failures
  double repair_mean_seconds = 0.0;
  double repair_median_seconds = 0.0;  ///< < mean (lognormal right skew)
};

enum class PlacementPolicy {
  random,              ///< uniform over available nodes
  reliability_ranked,  ///< prefer the highest-MTBF available nodes
};

struct ClusterConfig {
  std::vector<ClusterNodeConfig> nodes;
  int job_width = 1;            ///< nodes per job (gang scheduled)
  double job_work_seconds = 0.0;
  std::size_t job_count = 0;
  PlacementPolicy policy = PlacementPolicy::random;
  /// Failure renewals: Weibull with this shape (the paper's 0.7), or set
  /// to 1.0 for the classical exponential assumption.
  double failure_weibull_shape = 0.7;
  /// Cap on simultaneously running jobs (0 = unlimited). Placement policy
  /// only matters below saturation: with spare nodes, a reliability-aware
  /// scheduler can leave the failure-prone ones idle.
  std::size_t max_concurrent_jobs = 0;
  /// Useful-work seconds between application checkpoints (0 = none, the
  /// LANL default of restarting from scratch when no checkpoint exists).
  /// A killed job resumes from its last completed checkpoint.
  double checkpoint_interval = 0.0;
};

struct ClusterStats {
  double makespan = 0.0;          ///< time the last job completes
  double useful_work = 0.0;       ///< node-seconds of completed work
  double wasted_work = 0.0;       ///< node-seconds destroyed by failures
  std::size_t interruptions = 0;  ///< job kills due to node failure
  std::size_t node_failures = 0;
  double waste_fraction() const noexcept {
    const double total = useful_work + wasted_work;
    return total > 0.0 ? wasted_work / total : 0.0;
  }
};

/// Runs the full workload to completion. Throws InvalidArgument on an
/// impossible configuration (job wider than the cluster, non-positive
/// work or MTBF, ...).
ClusterStats simulate_cluster(const ClusterConfig& config,
                              hpcfail::Rng& rng);

/// Builds a heterogeneous node set mimicking Fig 3(a): `node_count` nodes
/// with lognormally-jittered MTBFs around `base_mtbf`, plus a fraction of
/// "hot" nodes (graphics-like) with `hot_factor` times the failure rate.
std::vector<ClusterNodeConfig> heterogeneous_nodes(
    std::size_t node_count, double base_mtbf_seconds, double jitter_sigma,
    double hot_fraction, double hot_factor, std::uint64_t seed);

}  // namespace hpcfail::sim
