#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hpcfail::sim {

CheckpointStats simulate_checkpoint(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair,
    const CheckpointConfig& config, hpcfail::Rng& rng) {
  HPCFAIL_EXPECTS(config.work_seconds > 0.0, "work must be positive");
  HPCFAIL_EXPECTS(config.interval > 0.0, "interval must be positive");
  HPCFAIL_EXPECTS(config.checkpoint_cost >= 0.0,
                  "checkpoint cost must be non-negative");
  HPCFAIL_EXPECTS(config.restart_cost >= 0.0,
                  "restart cost must be non-negative");

  CheckpointStats stats;
  double saved = 0.0;  // work persisted by the last completed checkpoint
  double ttf = failure_process.sample(rng);  // operational time to failure

  while (saved < config.work_seconds) {
    // One attempt: a work segment, then (unless the job completes) a
    // checkpoint write. A failure mid-attempt loses the segment and any
    // partial checkpoint.
    const double segment =
        std::min(config.interval, config.work_seconds - saved);
    const bool final_segment = saved + segment >= config.work_seconds;
    const double attempt =
        segment + (final_segment ? 0.0 : config.checkpoint_cost);

    if (ttf > attempt) {
      ttf -= attempt;
      stats.wall_clock += attempt;
      stats.useful_work += segment;
      stats.checkpoint_overhead += attempt - segment;
      saved += segment;
      continue;
    }

    // Failure during the attempt.
    stats.wall_clock += ttf;
    const double work_done = std::min(ttf, segment);
    stats.lost_work += work_done;
    stats.checkpoint_overhead += std::max(0.0, ttf - segment);
    ++stats.failures;

    if (repair != nullptr) {
      const double down = repair->sample(rng);
      stats.wall_clock += down;
      stats.downtime += down;
    }
    stats.wall_clock += config.restart_cost;
    stats.restart_overhead += config.restart_cost;
    ttf = failure_process.sample(rng);
  }
  return stats;
}

CheckpointStats simulate_checkpoint_mean(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair,
    const CheckpointConfig& config, hpcfail::Rng& rng, std::size_t runs) {
  HPCFAIL_EXPECTS(runs > 0, "need at least one run");
  CheckpointStats total;
  for (std::size_t i = 0; i < runs; ++i) {
    const CheckpointStats s =
        simulate_checkpoint(failure_process, repair, config, rng);
    total.wall_clock += s.wall_clock;
    total.useful_work += s.useful_work;
    total.checkpoint_overhead += s.checkpoint_overhead;
    total.lost_work += s.lost_work;
    total.restart_overhead += s.restart_overhead;
    total.downtime += s.downtime;
    total.failures += s.failures;
  }
  const auto n = static_cast<double>(runs);
  total.wall_clock /= n;
  total.useful_work /= n;
  total.checkpoint_overhead /= n;
  total.lost_work /= n;
  total.restart_overhead /= n;
  total.downtime /= n;
  total.failures = static_cast<std::size_t>(
      std::llround(static_cast<double>(total.failures) / n));
  return total;
}

double young_interval(double mtbf_seconds, double checkpoint_cost) {
  HPCFAIL_EXPECTS(mtbf_seconds > 0.0, "MTBF must be positive");
  HPCFAIL_EXPECTS(checkpoint_cost > 0.0, "checkpoint cost must be positive");
  return std::sqrt(2.0 * checkpoint_cost * mtbf_seconds);
}

double daly_interval(double mtbf_seconds, double checkpoint_cost) {
  HPCFAIL_EXPECTS(mtbf_seconds > 0.0, "MTBF must be positive");
  HPCFAIL_EXPECTS(checkpoint_cost > 0.0, "checkpoint cost must be positive");
  if (checkpoint_cost >= 2.0 * mtbf_seconds) return mtbf_seconds;
  const double ratio = checkpoint_cost / (2.0 * mtbf_seconds);
  return std::sqrt(2.0 * checkpoint_cost * mtbf_seconds) *
             (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) -
         checkpoint_cost;
}

CheckpointStats simulate_checkpoint_schedule(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair,
    const CheckpointConfig& config, const IntervalSchedule& schedule,
    hpcfail::Rng& rng) {
  HPCFAIL_EXPECTS(config.work_seconds > 0.0, "work must be positive");
  HPCFAIL_EXPECTS(config.checkpoint_cost >= 0.0,
                  "checkpoint cost must be non-negative");
  HPCFAIL_EXPECTS(config.restart_cost >= 0.0,
                  "restart cost must be non-negative");

  CheckpointStats stats;
  double saved = 0.0;
  double ttf = failure_process.sample(rng);
  double since_failure = 0.0;  // operational time since the last failure

  while (saved < config.work_seconds) {
    const double interval = schedule(since_failure);
    HPCFAIL_EXPECTS(interval > 0.0, "schedule returned a non-positive "
                                    "interval");
    const double segment =
        std::min(interval, config.work_seconds - saved);
    const bool final_segment = saved + segment >= config.work_seconds;
    const double attempt =
        segment + (final_segment ? 0.0 : config.checkpoint_cost);

    if (ttf > attempt) {
      ttf -= attempt;
      since_failure += attempt;
      stats.wall_clock += attempt;
      stats.useful_work += segment;
      stats.checkpoint_overhead += attempt - segment;
      saved += segment;
      continue;
    }

    stats.wall_clock += ttf;
    const double work_done = std::min(ttf, segment);
    stats.lost_work += work_done;
    stats.checkpoint_overhead += std::max(0.0, ttf - segment);
    ++stats.failures;

    if (repair != nullptr) {
      const double down = repair->sample(rng);
      stats.wall_clock += down;
      stats.downtime += down;
    }
    stats.wall_clock += config.restart_cost;
    stats.restart_overhead += config.restart_cost;
    ttf = failure_process.sample(rng);
    since_failure = 0.0;
  }
  return stats;
}

IntervalSchedule hazard_aware_schedule(
    const hpcfail::dist::Distribution& process, double checkpoint_cost,
    double min_interval, double max_interval) {
  HPCFAIL_EXPECTS(checkpoint_cost > 0.0,
                  "checkpoint cost must be positive");
  HPCFAIL_EXPECTS(min_interval > 0.0 && max_interval >= min_interval,
                  "need 0 < min_interval <= max_interval");
  return [&process, checkpoint_cost, min_interval,
          max_interval](double since_failure) {
    // Young's tau = sqrt(2 C / lambda) with the process's instantaneous
    // hazard standing in for the rate. Evaluate slightly after zero so
    // Weibull shapes < 1 (infinite hazard at 0) stay finite.
    const double t = std::max(since_failure, 1.0);
    const double h = process.hazard(t);
    if (!(h > 0.0) || !std::isfinite(h)) return max_interval;
    const double tau = std::sqrt(2.0 * checkpoint_cost / h);
    return std::clamp(tau, min_interval, max_interval);
  };
}

double best_interval_by_simulation(
    const hpcfail::dist::Distribution& failure_process,
    const hpcfail::dist::Distribution* repair, CheckpointConfig config,
    std::span<const double> intervals, hpcfail::Rng& rng,
    std::size_t runs_per_interval) {
  HPCFAIL_EXPECTS(!intervals.empty(), "no candidate intervals");
  double best = intervals.front();
  double best_wall = 0.0;
  bool first = true;
  for (const double interval : intervals) {
    HPCFAIL_EXPECTS(interval > 0.0, "intervals must be positive");
    config.interval = interval;
    const CheckpointStats s = simulate_checkpoint_mean(
        failure_process, repair, config, rng, runs_per_interval);
    if (first || s.wall_clock < best_wall) {
      best = interval;
      best_wall = s.wall_clock;
      first = false;
    }
  }
  return best;
}

}  // namespace hpcfail::sim
