#include "common/csv.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace hpcfail {

CsvReader::CsvReader(std::istream& source, char separator)
    : in_(source), sep_(separator) {
  if (obs::enabled()) {
    rows_counter_ = &obs::registry().counter("csv.rows_read");
  }
}

bool CsvReader::next_row(std::vector<std::string>& fields) {
  fields.clear();
  int ch = in_.get();
  if (ch == std::istream::traits_type::eof()) return false;
  if (rows_counter_ != nullptr) rows_counter_->add(1);
  ++line_;
  row_start_line_ = line_;

  std::string field;
  bool quoted = false;
  // A trailing '\r' is a CRLF line ending only when it arrived outside
  // quotes; a '\r' pushed inside quotes (written by csv_escape) is field
  // data — even when more unquoted characters follow the closing quote,
  // so this tracks the provenance of the *current last* character, not
  // whether the field started quoted.
  bool trailing_cr_is_data = false;
  const auto strip_cr = [&field, &trailing_cr_is_data] {
    if (!trailing_cr_is_data && !field.empty() && field.back() == '\r') {
      field.pop_back();
    }
  };
  for (;; ch = in_.get()) {
    if (ch == std::istream::traits_type::eof()) {
      if (quoted) {
        throw ParseError("unterminated quoted CSV field starting at line " +
                         std::to_string(row_start_line_));
      }
      // A CRLF file whose last line lacks the final newline still ends
      // the field with '\r'; strip it exactly as the '\n' path does.
      strip_cr();
      fields.push_back(std::move(field));
      return true;
    }
    const char c = static_cast<char>(ch);
    if (quoted) {
      if (c == '"') {
        if (in_.peek() == '"') {
          in_.get();
          field.push_back('"');
          trailing_cr_is_data = false;
        } else {
          quoted = false;
        }
      } else {
        if (c == '\n') ++line_;
        field.push_back(c);
        trailing_cr_is_data = (c == '\r');
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == sep_) {
      fields.push_back(std::move(field));
      field.clear();
      trailing_cr_is_data = false;
    } else if (c == '\n') {
      strip_cr();
      fields.push_back(std::move(field));
      return true;
    } else {
      field.push_back(c);
      trailing_cr_is_data = false;
    }
  }
}

CsvWriter::CsvWriter(std::ostream& sink, char separator)
    : out_(sink), sep_(separator) {
  if (obs::enabled()) {
    rows_counter_ = &obs::registry().counter("csv.rows_written");
  }
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (rows_counter_ != nullptr) rows_counter_->add(1);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out_ << sep_;
    out_ << csv_escape(fields[i], sep_);
  }
  out_ << '\n';
}

std::string csv_escape(std::string_view field, char separator) {
  const bool needs_quotes =
      field.find(separator) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text,
                                                char separator) {
  std::istringstream in{std::string(text)};
  CsvReader reader(in, separator);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.next_row(row)) rows.push_back(row);
  return rows;
}

}  // namespace hpcfail
