// Deterministic pseudo-random number generation.
//
// The synthetic trace must regenerate bit-identically across runs and
// platforms, so we hand-roll xoshiro256++ (seeded through splitmix64)
// instead of relying on implementation-defined std:: distributions.
// Rng satisfies UniformRandomBitGenerator, but all samplers used by the
// library live in hpcfail::dist and use only next_u64()/uniform().
#pragma once

#include <cstdint>
#include <limits>

namespace hpcfail {

/// splitmix64 step; used for seed expansion and cheap hashing of stream ids.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes several integers into one well-distributed 64-bit seed. Used to
/// derive independent per-(system, node) generator streams from one
/// scenario seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL) noexcept;

/// xoshiro256++ generator. Copyable value type; 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any 64-bit seed works.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // The draw methods are defined inline: the trace generator and the
  // samplers call them several times per record, and an out-of-line call
  // per draw is measurable against the few ALU ops each one costs.

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as input to -log(u).
  double uniform_pos() noexcept {
    return 1.0 - uniform();  // in (0, 1]
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (bitmask
  /// rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    // Bitmask rejection: unbiased and portable (no 128-bit multiply).
    if (n == 0) return 0;
    std::uint64_t mask = n - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    for (;;) {
      const std::uint64_t candidate = next_u64() & mask;
      if (candidate < n) return candidate;
    }
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Forks an independent generator stream; deterministic given this
  /// generator's state and the stream id.
  Rng fork(std::uint64_t stream) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace hpcfail
