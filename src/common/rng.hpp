// Deterministic pseudo-random number generation.
//
// The synthetic trace must regenerate bit-identically across runs and
// platforms, so we hand-roll xoshiro256++ (seeded through splitmix64)
// instead of relying on implementation-defined std:: distributions.
// Rng satisfies UniformRandomBitGenerator, but all samplers used by the
// library live in hpcfail::dist and use only next_u64()/uniform().
#pragma once

#include <cstdint>
#include <limits>

namespace hpcfail {

/// splitmix64 step; used for seed expansion and cheap hashing of stream ids.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mixes several integers into one well-distributed 64-bit seed. Used to
/// derive independent per-(system, node) generator streams from one
/// scenario seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b = 0x9e3779b97f4a7c15ULL,
                       std::uint64_t c = 0xbf58476d1ce4e5b9ULL) noexcept;

/// xoshiro256++ generator. Copyable value type; 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so any 64-bit seed works.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() noexcept;

  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in (0, 1]; safe as input to -log(u).
  double uniform_pos() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (bitmask
  /// rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Forks an independent generator stream; deterministic given this
  /// generator's state and the stream id.
  Rng fork(std::uint64_t stream) const noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace hpcfail
