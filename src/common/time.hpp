// Civil-calendar time math for failure records.
//
// The LANL trace spans 1996-2005; records carry wall-clock timestamps whose
// calendar structure matters (hour-of-day and day-of-week failure-rate
// periodicity, months-in-production lifetime curves). Everything here works
// in UTC on signed 64-bit epoch seconds, using Howard Hinnant's proleptic
// Gregorian algorithms, so no locale or <ctime> state is involved.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hpcfail {

/// Seconds since 1970-01-01T00:00:00Z. Signed: dates before 1970 are valid.
using Seconds = std::int64_t;

inline constexpr Seconds kSecondsPerMinute = 60;
inline constexpr Seconds kSecondsPerHour = 3600;
inline constexpr Seconds kSecondsPerDay = 86400;
inline constexpr double kSecondsPerYear = 365.2425 * 86400.0;
inline constexpr double kSecondsPerMonth = kSecondsPerYear / 12.0;

/// A calendar date-time (UTC, proleptic Gregorian).
struct CivilDateTime {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31
  int hour = 0;   ///< 0..23
  int minute = 0; ///< 0..59
  int second = 0; ///< 0..59

  friend bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

/// Days since the epoch for a civil date (Hinnant's days_from_civil).
std::int64_t days_from_civil(int year, int month, int day) noexcept;

/// Inverse of days_from_civil.
void civil_from_days(std::int64_t days, int& year, int& month,
                     int& day) noexcept;

/// True for a valid proleptic-Gregorian calendar date.
bool is_valid_date(int year, int month, int day) noexcept;

/// Number of days in the given month (handles leap years).
int days_in_month(int year, int month) noexcept;

/// Epoch seconds for a civil date-time. Throws InvalidArgument when any
/// field is out of range.
Seconds to_epoch(const CivilDateTime& cdt);

/// Convenience: epoch seconds at midnight of year/month/day.
Seconds to_epoch(int year, int month, int day);

/// Civil date-time for an epoch-seconds instant.
CivilDateTime from_epoch(Seconds t) noexcept;

/// Hour of day 0..23 at instant t.
int hour_of_day(Seconds t) noexcept;

/// Day of week at instant t: 0 = Sunday .. 6 = Saturday.
int day_of_week(Seconds t) noexcept;

/// True when t falls on Saturday or Sunday.
bool is_weekend(Seconds t) noexcept;

/// Whole calendar months from `start` to `t` (0 while inside the first
/// month). Used to bucket failures into months-in-production. Throws
/// InvalidArgument when t < start.
int months_between(Seconds start, Seconds t);

/// Fractional years between two instants (may be negative).
double years_between(Seconds start, Seconds end) noexcept;

/// Formats as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string format_timestamp(Seconds t);

/// Parses "YYYY-MM-DD HH:MM:SS" or "YYYY-MM-DD". Throws ParseError on any
/// malformed or out-of-range input.
Seconds parse_timestamp(std::string_view text);

}  // namespace hpcfail
