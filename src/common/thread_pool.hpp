// Deterministic parallel execution for hpcfail's embarrassingly parallel
// hot paths (per-(system, node) trace generation, independent MLE fits).
//
// The library's randomness contract makes parallelism safe by design:
// every (seed, system, node) triple seeds an independent PRNG stream, so
// work items never share mutable state and can run in any order. The
// helpers here preserve *output* determinism on top of that by always
// assembling results in work-item index order — parallel_map(n, fn)
// returns exactly the vector a sequential loop would build, at any thread
// count.
//
// Nesting: parallel_for / parallel_map called from inside a pool worker
// degrade to a plain sequential loop on that worker (detected via a
// thread-local flag). This keeps nested parallel code correct and
// deadlock-free: a worker never blocks waiting for queue slots that only
// it could drain.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/span.hpp"

namespace hpcfail {

/// Fixed-size worker pool with a FIFO task queue. Tasks are arbitrary
/// callables; submit() returns a std::future that carries the task's
/// result or its exception. A pool constructed with zero threads runs
/// every task inline in submit() (useful for forcing sequential
/// execution without special-casing call sites).
class ThreadPool {
 public:
  /// Starts `threads` workers (0 means run tasks inline).
  explicit ThreadPool(unsigned threads);

  /// Drains nothing: outstanding tasks are completed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// parallel_for / parallel_map use this to run nested parallelism
  /// inline instead of deadlocking on a saturated queue.
  static bool inside_worker() noexcept;

  /// Schedules `fn` and returns a future for its result. Exceptions
  /// thrown by `fn` are captured into the future. Do not block on the
  /// returned future from another task of the same pool; use the
  /// parallel_* helpers, which handle nesting.
  ///
  /// The submitting thread's current obs span id is captured here and
  /// restored around the task's execution, so spans opened inside the
  /// task are parented to the span that submitted it — span nesting
  /// survives the thread hop (see obs/span.hpp).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    const std::uint64_t parent_span = obs::current_span_id();
    enqueue([task, parent_span] {
      obs::SpanContext span_context(parent_span);
      (*task)();
    });
    return future;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// std::thread::hardware_concurrency(), but never 0.
unsigned hardware_parallelism() noexcept;

/// Sets the library-wide worker count used by parallel_for/parallel_map
/// (and everything built on them: TraceGenerator::generate,
/// dist::fit_report, dist::fit_report_many). 0 restores the default,
/// hardware_parallelism().
/// Rebuilds the shared pool; do not call concurrently with running
/// parallel work.
void set_parallelism(unsigned n);

/// The current library-wide worker count (>= 1).
unsigned parallelism();

/// The shared pool behind the parallel_* helpers, sized to parallelism().
/// Created lazily; most code should use the helpers instead.
ThreadPool& global_pool();

/// Runs fn(0), ..., fn(n-1), sharding contiguous index chunks across the
/// shared pool. Blocks until all iterations finish. Runs sequentially
/// inline when parallelism() == 1, n <= 1, or the caller is itself a pool
/// worker. If any iteration throws, the exception from the
/// lowest-numbered failing chunk is rethrown after all chunks complete.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const unsigned threads = parallelism();
  if (threads <= 1 || n == 1 || ThreadPool::inside_worker()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = global_pool();
  // A few chunks per worker so uneven per-index cost still balances.
  const std::size_t chunks =
      std::min(n, static_cast<std::size_t>(threads) * 4);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    futures.push_back(pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

/// Parallel map: returns {fn(0), ..., fn(n-1)} in index order — the exact
/// vector the sequential loop would produce, at any thread count. Same
/// nesting/exception behavior as parallel_for.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<std::optional<R>> slots(n);
  parallel_for(n, [&slots, &fn](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace hpcfail
