// Small string utilities shared across the library (trimming, splitting,
// checked numeric parsing). All parsers throw ParseError with the offending
// text so trace-ingestion errors are actionable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail {

/// Copy of `s` with ASCII whitespace removed from both ends.
std::string trim(std::string_view s);

/// Lower-cased ASCII copy of `s`.
std::string to_lower(std::string_view s);

/// Splits on `sep`; keeps empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Parses a signed 64-bit integer; the whole string must be consumed.
/// Throws ParseError otherwise.
std::int64_t parse_i64(std::string_view s);

/// Parses a finite double; the whole string must be consumed.
/// Throws ParseError otherwise.
double parse_double(std::string_view s);

/// Formats a double with `prec` significant digits, trimming zeros.
std::string format_double(double value, int prec = 6);

}  // namespace hpcfail
