#include "common/error.hpp"

#include <sstream>

namespace hpcfail::detail {

void throw_expects_failure(const char* cond, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << msg << " [" << cond << " at " << file
     << ':' << line << ']';
  throw InvalidArgument(os.str());
}

void throw_assert_failure(const char* cond, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated: " << cond << " at " << file << ':'
     << line;
  throw LogicError(os.str());
}

}  // namespace hpcfail::detail
