#include "common/time.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <string>

#include "common/error.hpp"

namespace hpcfail {

std::int64_t days_from_civil(int y, int m, int d) noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);           // [0,399]
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;                                   // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0,146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month,
                     int& day) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);        // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0,399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                             // [0,11]
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

int days_in_month(int year, int month) noexcept {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) return 0;
  const bool leap =
      (year % 4 == 0 && year % 100 != 0) || (year % 400 == 0);
  return kDays[static_cast<std::size_t>(month - 1)] +
         (month == 2 && leap ? 1 : 0);
}

bool is_valid_date(int year, int month, int day) noexcept {
  return month >= 1 && month <= 12 && day >= 1 &&
         day <= days_in_month(year, month);
}

Seconds to_epoch(const CivilDateTime& cdt) {
  HPCFAIL_EXPECTS(is_valid_date(cdt.year, cdt.month, cdt.day),
                  "invalid calendar date");
  HPCFAIL_EXPECTS(cdt.hour >= 0 && cdt.hour <= 23, "hour out of range");
  HPCFAIL_EXPECTS(cdt.minute >= 0 && cdt.minute <= 59, "minute out of range");
  HPCFAIL_EXPECTS(cdt.second >= 0 && cdt.second <= 59, "second out of range");
  return days_from_civil(cdt.year, cdt.month, cdt.day) * kSecondsPerDay +
         cdt.hour * kSecondsPerHour + cdt.minute * kSecondsPerMinute +
         cdt.second;
}

Seconds to_epoch(int year, int month, int day) {
  return to_epoch(CivilDateTime{year, month, day, 0, 0, 0});
}

CivilDateTime from_epoch(Seconds t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilDateTime cdt;
  civil_from_days(days, cdt.year, cdt.month, cdt.day);
  cdt.hour = static_cast<int>(rem / kSecondsPerHour);
  cdt.minute = static_cast<int>((rem / kSecondsPerMinute) % 60);
  cdt.second = static_cast<int>(rem % 60);
  return cdt;
}

int hour_of_day(Seconds t) noexcept { return from_epoch(t).hour; }

int day_of_week(Seconds t) noexcept {
  std::int64_t days = t / kSecondsPerDay;
  if (t % kSecondsPerDay < 0) --days;
  // 1970-01-01 was a Thursday (= 4 with Sunday = 0).
  std::int64_t dow = (days + 4) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

bool is_weekend(Seconds t) noexcept {
  const int dow = day_of_week(t);
  return dow == 0 || dow == 6;
}

int months_between(Seconds start, Seconds t) {
  HPCFAIL_EXPECTS(t >= start, "months_between requires t >= start");
  const CivilDateTime a = from_epoch(start);
  const CivilDateTime b = from_epoch(t);
  int months = (b.year - a.year) * 12 + (b.month - a.month);
  // Not yet a full month if the day-of-month (then time-of-day) is earlier.
  const auto time_of = [](const CivilDateTime& c) {
    return ((c.day * 24 + c.hour) * 60 + c.minute) * 60 + c.second;
  };
  if (time_of(b) < time_of(a)) --months;
  return months < 0 ? 0 : months;
}

double years_between(Seconds start, Seconds end) noexcept {
  return static_cast<double>(end - start) / kSecondsPerYear;
}

std::string format_timestamp(Seconds t) {
  const CivilDateTime c = from_epoch(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

namespace {

/// One "%d"-style field: optional leading whitespace, then an int.
bool scan_int(std::string_view& s, int& out) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{}) return false;
  s.remove_prefix(static_cast<std::size_t>(ptr - s.data()));
  return true;
}

bool scan_char(std::string_view& s, char ch) {
  if (s.empty() || s.front() != ch) return false;
  s.remove_prefix(1);
  return true;
}

}  // namespace

// Hand-rolled with from_chars rather than sscanf: this runs twice per
// event on the streaming-ingest hot path, where sscanf's format
// interpretation and locale machinery dominated the parse cost.
Seconds parse_timestamp(std::string_view text) {
  CivilDateTime c;
  std::string_view rest = text;
  const auto unparseable = [&text] {
    return ParseError("unparseable timestamp: '" + std::string(text) + "'");
  };
  if (!scan_int(rest, c.year) || !scan_char(rest, '-') ||
      !scan_int(rest, c.month) || !scan_char(rest, '-') ||
      !scan_int(rest, c.day)) {
    throw unparseable();
  }
  if (!rest.empty() && (rest.front() == ' ' || rest.front() == '\t')) {
    // Time-of-day part ("%d %d:%d:%d": whitespace then three fields).
    if (!scan_int(rest, c.hour) || !scan_char(rest, ':') ||
        !scan_int(rest, c.minute) || !scan_char(rest, ':') ||
        !scan_int(rest, c.second)) {
      throw unparseable();
    }
  }
  if (!rest.empty()) {
    throw ParseError("trailing characters in timestamp: '" +
                     std::string(text) + "'");
  }
  try {
    return to_epoch(c);
  } catch (const InvalidArgument&) {
    throw ParseError("timestamp field out of range: '" + std::string(text) +
                     "'");
  }
}

}  // namespace hpcfail
