#include "common/rng.hpp"

namespace hpcfail {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) noexcept {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64(s);
  s ^= b * 0xff51afd7ed558ccdULL;
  out ^= splitmix64(s);
  s ^= c * 0xc4ceb9fe1a85ec53ULL;
  out ^= splitmix64(s);
  return out;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  Rng copy = *this;
  return Rng(mix_seed(copy.next_u64(), stream, 0x2545f4914f6cdd1dULL));
}

}  // namespace hpcfail
