#include "common/rng.hpp"

namespace hpcfail {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b,
                       std::uint64_t c) noexcept {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64(s);
  s ^= b * 0xff51afd7ed558ccdULL;
  out ^= splitmix64(s);
  s ^= c * 0xc4ceb9fe1a85ec53ULL;
  out ^= splitmix64(s);
  return out;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_pos() noexcept {
  return 1.0 - uniform();  // in (0, 1]
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Bitmask rejection: unbiased and portable (no 128-bit multiply).
  if (n == 0) return 0;
  std::uint64_t mask = n - 1;
  mask |= mask >> 1;
  mask |= mask >> 2;
  mask |= mask >> 4;
  mask |= mask >> 8;
  mask |= mask >> 16;
  mask |= mask >> 32;
  for (;;) {
    const std::uint64_t candidate = next_u64() & mask;
    if (candidate < n) return candidate;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  Rng copy = *this;
  return Rng(mix_seed(copy.next_u64(), stream, 0x2545f4914f6cdd1dULL));
}

}  // namespace hpcfail
