// Error taxonomy and contract-checking macros for hpcfail.
//
// All library errors derive from hpcfail::Error so callers can catch the
// whole family with one handler. Precondition violations throw
// InvalidArgument via HPCFAIL_EXPECTS; internal invariant violations throw
// LogicError via HPCFAIL_ASSERT.
#pragma once

#include <stdexcept>
#include <string>

namespace hpcfail {

/// Base class of every exception thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Malformed input data (CSV rows, timestamps, enum spellings, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Well-formed input that fails semantic validation (unknown system id,
/// out-of-range option value, unsupported format name, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or left its domain.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Distribution fitting failed: no family converged on the sample, or an
/// MLE left its domain. Derives from NumericError so existing numeric
/// handlers keep working.
class FitError : public NumericError {
 public:
  explicit FitError(const std::string& what) : NumericError(what) {}
};

/// The operating system refused a file operation (open, read, write).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An internal invariant did not hold; indicates a library bug.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_expects_failure(const char* cond, const char* file,
                                        int line, const std::string& msg);
[[noreturn]] void throw_assert_failure(const char* cond, const char* file,
                                       int line);
}  // namespace detail

}  // namespace hpcfail

/// Precondition check: throws hpcfail::InvalidArgument when `cond` is false.
#define HPCFAIL_EXPECTS(cond, msg)                                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hpcfail::detail::throw_expects_failure(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (false)

/// Internal invariant check: throws hpcfail::LogicError when `cond` is false.
#define HPCFAIL_ASSERT(cond)                                               \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hpcfail::detail::throw_assert_failure(#cond, __FILE__, __LINE__);  \
    }                                                                      \
  } while (false)
