#include "common/thread_pool.hpp"

#include <utility>

namespace hpcfail {

namespace {

thread_local bool t_inside_worker = false;

// Shared-pool state. Guarded by g_pool_mutex; the pool itself is
// internally synchronized once created.
std::mutex g_pool_mutex;
unsigned g_target = 0;  // 0 = hardware default
std::unique_ptr<ThreadPool> g_pool;

unsigned resolved_target() noexcept {
  return g_target != 0 ? g_target : hardware_parallelism();
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::inside_worker() noexcept { return t_inside_worker; }

void ThreadPool::enqueue(std::function<void()> job) {
  if (workers_.empty()) {
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task: exceptions land in the future
  }
}

unsigned hardware_parallelism() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n != 0 ? n : 1;
}

void set_parallelism(unsigned n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (n == g_target && g_pool) return;
  g_target = n;
  g_pool.reset();  // rebuilt lazily at the new size
}

unsigned parallelism() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  return resolved_target();
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(resolved_target());
  return *g_pool;
}

}  // namespace hpcfail
