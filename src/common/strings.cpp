#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace hpcfail {

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& ch : out) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::int64_t parse_i64(std::string_view s) {
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty()) {
    throw ParseError("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty() || !std::isfinite(value)) {
    throw ParseError("not a finite number: '" + std::string(s) + "'");
  }
  return value;
}

std::string format_double(double value, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", prec, value);
  return buf;
}

}  // namespace hpcfail
