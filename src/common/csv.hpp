// RFC-4180-style CSV reading and writing.
//
// The public LANL failure-data release is distributed as CSV; this module
// provides the lossless round-trip layer used by hpcfail::trace. Fields
// containing the separator, quotes, or newlines are quoted; embedded quotes
// are doubled. The reader is streaming (row at a time) and reports the line
// number of any malformed row.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::obs {
class Counter;
}  // namespace hpcfail::obs

namespace hpcfail {

/// Streaming CSV reader over any std::istream.
///
/// Rows delivered are counted into the obs counter "csv.rows_read" (the
/// handle is resolved once per reader, so the per-row cost is one relaxed
/// atomic increment; zero when obs is disabled at construction).
class CsvReader {
 public:
  /// `source` must outlive the reader.
  explicit CsvReader(std::istream& source, char separator = ',');

  /// Reads the next row into `fields` (cleared first). Returns false at
  /// end of input. Throws ParseError on an unterminated quoted field.
  bool next_row(std::vector<std::string>& fields);

  /// 1-based line number of the most recently returned row.
  std::size_t line_number() const noexcept { return row_start_line_; }

 private:
  std::istream& in_;
  char sep_;
  std::size_t line_ = 0;
  std::size_t row_start_line_ = 0;
  obs::Counter* rows_counter_ = nullptr;  ///< null when obs is disabled
};

/// Streaming CSV writer over any std::ostream. Rows written are counted
/// into the obs counter "csv.rows_written" (same scheme as CsvReader).
class CsvWriter {
 public:
  /// `sink` must outlive the writer.
  explicit CsvWriter(std::ostream& sink, char separator = ',');

  /// Writes one row, quoting fields as needed, terminated by '\n'.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  char sep_;
  obs::Counter* rows_counter_ = nullptr;  ///< null when obs is disabled
};

/// Quotes a single field if it contains the separator, a quote, or a
/// newline; otherwise returns it unchanged.
std::string csv_escape(std::string_view field, char separator = ',');

/// Parses a full document in memory. Convenience for tests and small files.
std::vector<std::vector<std::string>> parse_csv(std::string_view text,
                                                char separator = ',');

}  // namespace hpcfail
