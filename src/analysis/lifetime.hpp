// Section 5.2 / Figure 4: failure rate over a system's lifetime, bucketed
// by month in production and stacked by root cause. Also classifies which
// of the paper's two shapes (burn-in decay vs ramp-up) a curve follows.
#pragma once

#include <array>
#include <vector>

#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// Failures during one month of production, split by root cause.
struct MonthlyFailures {
  int month = 0;                          ///< months since production start
  std::array<double, 6> by_cause{};       ///< breakdown_index order
  double total() const noexcept {
    double t = 0.0;
    for (const double c : by_cause) t += c;
    return t;
  }
};

struct LifetimeCurve {
  int system_id = 0;
  std::vector<MonthlyFailures> months;  ///< one entry per production month
  /// Month with the highest failure count.
  int peak_month = 0;
  /// Mean failures/month over the first quarter vs the rest: > 1 means
  /// infant mortality (Fig 4a); a late peak with low start means the
  /// ramp-up shape (Fig 4b).
  double early_to_late_ratio = 0.0;
};

/// Computes Fig 4 for one system. Months beyond the system's production
/// window (repairs running past the end) are clamped into the final
/// month. Throws InvalidArgument when the system has no failures.
LifetimeCurve lifetime_curve(const trace::FailureDataset& dataset,
                             const trace::SystemCatalog& catalog,
                             int system_id);

}  // namespace hpcfail::analysis
