// Windowed reliability trends over a system's lifetime.
//
// Fig 4 shows failure *counts* per month; operators actually steer by the
// derived quantities -- node-MTBF and repair time over a sliding window
// ("is the system getting more reliable? are we fixing it faster?").
// This analyzer produces those series and a summary verdict comparing the
// first and last windows, the quantitative form of Section 5.2's
// "administrators gain experience" narrative.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// One sliding-window sample of a system's reliability state.
struct TrendPoint {
  int month = 0;           ///< window *end*, months since production start
  std::size_t failures = 0;  ///< failures inside the window
  double node_mtbf_hours = 0.0;   ///< node-hours in window / failures
  double mean_repair_minutes = 0.0;  ///< 0 when the window has no failures
};

struct TrendReport {
  int system_id = 0;
  int window_months = 0;
  std::vector<TrendPoint> points;  ///< one per month from window end on

  /// last-window node-MTBF divided by first-window node-MTBF: > 1 means
  /// the system got more reliable over its life.
  double mtbf_growth = 0.0;
};

/// Sliding-window trend for one system. Windows are
/// [month - window_months, month), stepped monthly. Throws
/// InvalidArgument when the system has no failures, or its production
/// time is shorter than two windows.
TrendReport reliability_trend(const trace::FailureDataset& dataset,
                              const trace::SystemCatalog& catalog,
                              int system_id, int window_months = 6);

}  // namespace hpcfail::analysis
