// Section 5.2 / Figure 5: failure counts by hour of the day and day of
// the week, plus the peak-to-trough ratios the paper reads off them
// (daytime ~2x night, weekday ~2x weekend).
#pragma once

#include <array>

#include "trace/dataset.hpp"

namespace hpcfail::analysis {

struct PeriodicityReport {
  std::array<double, 24> by_hour{};   ///< Fig 5 left
  std::array<double, 7> by_weekday{}; ///< Fig 5 right, 0 = Sunday

  /// max/min over smoothed hourly counts (the paper: "during peak hours
  /// of the day the failure rate is two times higher than at its lowest
  /// during the night"). +infinity when the smoothed trough is zero (all
  /// failures concentrated in part of the day) — the ratio diverges and
  /// is never silently replaced by a raw count.
  double day_night_ratio = 0.0;

  /// mean weekday count / mean weekend count (the paper: "nearly two
  /// times as high"). +infinity when no failure fell on a weekend.
  double weekday_weekend_ratio = 0.0;
};

/// Computes Fig 5 over all records in the dataset. Throws
/// InvalidArgument on an empty dataset.
PeriodicityReport periodicity(const trace::FailureDataset& dataset);

}  // namespace hpcfail::analysis
