#include "analysis/hazard.hpp"

#include <map>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

HazardReport node_hazard_analysis(const trace::FailureDataset& dataset,
                                  int system_id,
                                  std::optional<Seconds> censor_at,
                                  std::size_t min_events) {
  hpcfail::obs::ScopedTimer timer("analysis.hazard");
  const trace::DatasetView scoped = dataset.view().for_system(system_id);
  HPCFAIL_EXPECTS(!scoped.empty(), "system has no failures in the dataset");
  const Seconds horizon = censor_at.value_or(scoped.records().back().start);

  HazardReport report;
  std::map<int, Seconds> last_failure;
  for (const trace::FailureRecord& r : scoped.records()) {
    const auto it = last_failure.find(r.node_id);
    if (it != last_failure.end() && r.start >= it->second) {
      report.observations.push_back(
          {static_cast<double>(r.start - it->second), true});
      ++report.events;
    }
    last_failure[r.node_id] = r.start;
  }
  // One right-censored interval per node: from its last failure to the
  // observation horizon.
  for (const auto& [node, last] : last_failure) {
    if (horizon > last) {
      report.observations.push_back(
          {static_cast<double>(horizon - last), false});
      ++report.censored;
    }
  }
  HPCFAIL_EXPECTS(report.events >= min_events,
                  "too few interarrival events for hazard analysis");

  report.cumulative_hazard =
      hpcfail::stats::nelson_aalen(report.observations);
  report.log_log_slope =
      hpcfail::stats::log_log_hazard_slope(report.observations, min_events);
  return report;
}

}  // namespace hpcfail::analysis
