#include "analysis/trend.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

namespace {

// Node-hours of `sys` in production during [from, to).
double node_hours_in_window(const trace::SystemInfo& sys, Seconds from,
                            Seconds to) {
  double hours = 0.0;
  for (const trace::NodeCategory& c : sys.categories) {
    const Seconds begin = std::max(from, c.production_start);
    const Seconds end = std::min(to, c.production_end);
    if (end > begin) {
      hours += static_cast<double>(c.node_count) *
               static_cast<double>(end - begin) /
               static_cast<double>(kSecondsPerHour);
    }
  }
  return hours;
}

}  // namespace

TrendReport reliability_trend(const trace::FailureDataset& dataset,
                              const trace::SystemCatalog& catalog,
                              int system_id, int window_months) {
  hpcfail::obs::ScopedTimer timer("analysis.trend");
  HPCFAIL_EXPECTS(window_months >= 1, "window must be at least one month");
  const trace::SystemInfo& sys = catalog.system(system_id);
  const trace::DatasetView records = dataset.view().for_system(system_id);
  HPCFAIL_EXPECTS(!records.empty(), "system has no failures in the dataset");

  const Seconds start = sys.production_start();
  const int life_months = months_between(start, sys.production_end());
  HPCFAIL_EXPECTS(life_months >= 2 * window_months,
                  "production time shorter than two windows");

  TrendReport report;
  report.system_id = system_id;
  report.window_months = window_months;

  const auto month_to_time = [start](int month) {
    return start + static_cast<Seconds>(static_cast<double>(month) *
                                        kSecondsPerMonth);
  };

  for (int month = window_months; month <= life_months; ++month) {
    const Seconds from = month_to_time(month - window_months);
    const Seconds to = month_to_time(month);
    TrendPoint point;
    point.month = month;
    double downtime_minutes = 0.0;
    // Each sliding window is a binary-searched slice, not a rescan of the
    // system's whole history.
    const trace::DatasetView window = records.between(from, to);
    point.failures = window.size();
    downtime_minutes = window.total_downtime_minutes();
    const double hours = node_hours_in_window(sys, from, to);
    point.node_mtbf_hours =
        point.failures > 0 ? hours / static_cast<double>(point.failures)
                           : hours;
    point.mean_repair_minutes =
        point.failures > 0
            ? downtime_minutes / static_cast<double>(point.failures)
            : 0.0;
    report.points.push_back(point);
  }

  HPCFAIL_ASSERT(!report.points.empty());
  const double first = report.points.front().node_mtbf_hours;
  const double last = report.points.back().node_mtbf_hours;
  report.mtbf_growth = first > 0.0 ? last / first : 0.0;
  return report;
}

}  // namespace hpcfail::analysis
