// Cross-study comparison battery (ROADMAP item 4): runs the fit/analyzer
// stack over N independent traces — native LANL-shaped, foreign-schema
// files ingested through trace adapters, or synthetic SiteProfile
// corpora — and summarizes each site with the statistics the source
// papers publish: failure rates per node- and processor-year, the ranked
// interarrival FitReport with the Weibull shape, repair moments with the
// lognormal parameters, and the root-cause breakdown. `hpcfail compare`
// renders the result side by side through report::render_compare_*.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "dist/fit.hpp"
#include "stats/descriptive.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// One site's trace plus the normalization the study reports rates by.
struct CompareInput {
  std::string label;
  trace::FailureDataset dataset;
  /// Processor count, > 0 when known (site profiles know theirs; foreign
  /// trace files usually do not). 0 leaves per-processor rates unset.
  double procs = 0.0;
};

/// One site's battery results.
struct CompareSite {
  std::string label;
  std::size_t records = 0;
  std::size_t nodes = 0;        ///< distinct (system, node) pairs observed
  double span_years = 0.0;      ///< first start .. last end
  double failures_per_node_year = 0.0;
  /// Per-processor-year rate; NaN when the processor count is unknown.
  double failures_per_proc_year = 0.0;

  /// Fraction of records per root cause, kAllRootCauses order.
  std::array<double, 6> cause_fraction{};

  stats::Summary repair_minutes;
  dist::FitReport repair_fits;  ///< standard families over repair minutes
  /// LogNormal mu/sigma of the repair fit; NaN when lognormal failed.
  double repair_lognormal_mu = 0.0;
  double repair_lognormal_sigma = 0.0;

  stats::Summary gaps_seconds;  ///< pooled per-node interarrival gaps
  dist::FitReport gap_fits;     ///< standard families, 1-second floor
  /// Weibull shape/scale of the interarrival fit; NaN when it failed.
  double weibull_shape = 0.0;
  double weibull_scale = 0.0;
};

struct CompareReport {
  std::vector<CompareSite> sites;
};

/// Runs the battery for one site. Throws InvalidArgument on an empty
/// dataset (a site with no failures has no statistics to compare).
CompareSite summarize_site(const CompareInput& input);

/// Runs the battery per input, preserving order. Throws InvalidArgument
/// when `inputs` is empty.
CompareReport compare_sites(const std::vector<CompareInput>& inputs);

}  // namespace hpcfail::analysis
