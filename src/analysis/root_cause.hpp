// Section 4 / Figure 1: breakdown of failures (a) and downtime (b) into
// the six high-level root-cause categories, per hardware type and across
// all systems.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// One bar of Fig 1: the breakdown for one group of systems.
struct CauseBreakdown {
  std::string label;               ///< hardware type ("D".."H") or "All"
  std::array<double, 6> count_percent{};     ///< Fig 1(a), sums to 100
  std::array<double, 6> downtime_percent{};  ///< Fig 1(b), sums to 100
  std::size_t failures = 0;
  double downtime_minutes = 0.0;
};

/// Index into the percent arrays for a cause (same order as
/// trace::kAllRootCauses).
std::size_t breakdown_index(trace::RootCause cause) noexcept;

struct RootCauseReport {
  std::vector<CauseBreakdown> by_type;  ///< one per hardware type present
  CauseBreakdown all;                   ///< aggregate over every record
};

/// Computes Fig 1 from a dataset. Groups with zero failures are omitted
/// from by_type. Throws InvalidArgument on an empty dataset.
RootCauseReport root_cause_breakdown(const trace::FailureDataset& dataset,
                                     const trace::SystemCatalog& catalog);

/// Section 4's detailed-cause question: the fraction of *all* failures in
/// `dataset` attributed to one detailed cause (e.g. memory_dimm).
double detail_cause_fraction(const trace::FailureDataset& dataset,
                             trace::DetailCause detail);

}  // namespace hpcfail::analysis
