// Section 5.3 / Figure 6: the time between failures as a stochastic
// process, in the paper's two views (a single node; the whole system),
// optionally restricted to a time window (early vs late production), with
// the four standard distributions fitted by MLE and ranked by negative
// log-likelihood.
#pragma once

#include <optional>
#include <vector>

#include "dist/fit.hpp"
#include "stats/descriptive.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// Which failures the interarrival sample is drawn from.
struct InterarrivalQuery {
  int system_id = 0;
  /// Node view (Section 5.3 view i) when set; system-wide view (ii)
  /// otherwise.
  std::optional<int> node_id;
  /// Optional absolute time window [from, to); whole dataset otherwise.
  std::optional<Seconds> from;
  std::optional<Seconds> to;
};

struct InterarrivalReport {
  InterarrivalQuery query;
  std::vector<double> gaps_seconds;     ///< the empirical sample
  hpcfail::stats::Summary summary;      ///< mean / median / C^2 ...
  double zero_fraction = 0.0;           ///< share of exactly-zero gaps
                                        ///< (simultaneous failures, Fig 6c)
  /// MLE fits of the four standard families, ranked best (lowest nll)
  /// first, with fitting-cost metadata.
  hpcfail::dist::FitReport fits;

  const hpcfail::dist::FitResult& best() const { return fits.best(); }
};

/// Extracts the interarrival sample for `query` and fits the standard
/// families. Throws InvalidArgument when fewer than `min_gaps` (default
/// 8) interarrival times exist — too few to fit two-parameter models
/// meaningfully.
InterarrivalReport interarrival_analysis(const trace::FailureDataset& dataset,
                                         const InterarrivalQuery& query,
                                         std::size_t min_gaps = 8);

/// Fig 6 view (i) swept over a whole system: the per-node interarrival
/// fits of every node with at least `min_gaps` gaps.
struct NodeInterarrivalFits {
  int node_id = 0;
  std::size_t gap_count = 0;
  /// Standard-family fits, best first; empty when no family converged on
  /// this node's sample.
  hpcfail::dist::FitReport fits;
};

/// Batched per-node fits for one system, fanned out across the shared
/// pool via dist::fit_report_many. Nodes with fewer than `min_gaps` interarrival
/// times are omitted; result is ordered by node id and independent of the
/// thread count.
std::vector<NodeInterarrivalFits> per_node_interarrival_fits(
    const trace::FailureDataset& dataset, int system_id,
    std::size_t min_gaps = 8);

}  // namespace hpcfail::analysis
