#include "analysis/correlation.hpp"

#include <map>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "stats/descriptive.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

std::vector<double> autocorrelation(std::span<const double> sequence,
                                    std::size_t max_lag) {
  HPCFAIL_EXPECTS(max_lag >= 1, "max_lag must be at least 1");
  HPCFAIL_EXPECTS(sequence.size() >= max_lag + 2,
                  "sequence too short for the requested lag");
  const double m = hpcfail::stats::mean(sequence);
  double denom = 0.0;
  for (const double x : sequence) denom += (x - m) * (x - m);
  HPCFAIL_EXPECTS(denom > 0.0,
                  "autocorrelation undefined for a constant sequence");

  std::vector<double> acf;
  acf.reserve(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (std::size_t i = 0; i + lag < sequence.size(); ++i) {
      num += (sequence[i] - m) * (sequence[i + lag] - m);
    }
    acf.push_back(num / denom);
  }
  return acf;
}

CorrelationReport correlation_analysis(const trace::FailureDataset& dataset,
                                       int system_id, std::size_t max_lag) {
  hpcfail::obs::ScopedTimer timer("analysis.correlation");
  const trace::DatasetView scoped = dataset.view().for_system(system_id);
  HPCFAIL_EXPECTS(scoped.size() >= 32,
                  "too few failures for correlation analysis");

  CorrelationReport report;

  // Simultaneous bursts: group records by exact start second.
  report.bursts.total_failures = scoped.size();
  std::size_t run = 1;
  const auto records = scoped.records();
  const auto close_run = [&report](std::size_t length) {
    if (length >= 2) {
      ++report.bursts.burst_events;
      report.bursts.burst_failures += length;
      report.bursts.largest_burst =
          std::max(report.bursts.largest_burst, length);
    }
  };
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].start == records[i - 1].start) {
      ++run;
    } else {
      close_run(run);
      run = 1;
    }
  }
  close_run(run);

  report.interarrival_autocorrelation =
      autocorrelation(scoped.system_interarrivals(), max_lag);

  // Daily counts across the system's observed span.
  std::map<std::int64_t, double> daily;
  for (const trace::FailureRecord& r : records) {
    ++daily[r.start / kSecondsPerDay];
  }
  // Days without failures count as zeros.
  const std::int64_t first_day = records.front().start / kSecondsPerDay;
  const std::int64_t last_day = records.back().start / kSecondsPerDay;
  std::vector<double> counts;
  counts.reserve(static_cast<std::size_t>(last_day - first_day + 1));
  for (std::int64_t day = first_day; day <= last_day; ++day) {
    const auto it = daily.find(day);
    counts.push_back(it != daily.end() ? it->second : 0.0);
  }
  const double mean = hpcfail::stats::mean(counts);
  report.daily_dispersion =
      mean > 0.0 ? hpcfail::stats::variance(counts) / mean : 0.0;
  return report;
}

}  // namespace hpcfail::analysis
