#include "analysis/lifetime.hpp"

#include <algorithm>

#include "analysis/root_cause.hpp"
#include "common/error.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

LifetimeCurve lifetime_curve(const trace::FailureDataset& dataset,
                             const trace::SystemCatalog& catalog,
                             int system_id) {
  hpcfail::obs::ScopedTimer timer("analysis.lifetime");
  const trace::SystemInfo& sys = catalog.system(system_id);
  const trace::DatasetView records = dataset.view().for_system(system_id);
  HPCFAIL_EXPECTS(!records.empty(), "system has no failures in the dataset");

  const Seconds start = sys.production_start();
  const int total_months =
      months_between(start, sys.production_end()) + 1;

  LifetimeCurve curve;
  curve.system_id = system_id;
  curve.months.resize(static_cast<std::size_t>(total_months));
  for (int m = 0; m < total_months; ++m) {
    curve.months[static_cast<std::size_t>(m)].month = m;
  }

  for (const trace::FailureRecord& r : records.records()) {
    int m = r.start >= start ? months_between(start, r.start) : 0;
    m = std::min(m, total_months - 1);
    curve.months[static_cast<std::size_t>(m)]
        .by_cause[breakdown_index(r.cause)] += 1.0;
  }

  double peak = -1.0;
  for (const MonthlyFailures& mf : curve.months) {
    if (mf.total() > peak) {
      peak = mf.total();
      curve.peak_month = mf.month;
    }
  }

  const int quarter = std::max(1, total_months / 4);
  double early = 0.0;
  double late = 0.0;
  for (const MonthlyFailures& mf : curve.months) {
    if (mf.month < quarter) {
      early += mf.total();
    } else {
      late += mf.total();
    }
  }
  const double early_rate = early / static_cast<double>(quarter);
  const double late_rate =
      late / static_cast<double>(std::max(1, total_months - quarter));
  curve.early_to_late_ratio =
      late_rate > 0.0 ? early_rate / late_rate : early_rate;
  return curve;
}

}  // namespace hpcfail::analysis
