#include "analysis/availability.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace hpcfail::analysis {

std::vector<SystemAvailability> availability_analysis(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog) {
  hpcfail::obs::ScopedTimer timer("analysis.availability");
  std::map<int, SystemAvailability> by_system;
  for (const trace::SystemInfo& sys : catalog.systems()) {
    SystemAvailability a;
    a.system_id = sys.id;
    a.hw_type = sys.hw_type;
    for (const trace::NodeCategory& c : sys.categories) {
      a.node_hours += static_cast<double>(c.node_count) *
                      static_cast<double>(c.production_end -
                                          c.production_start) /
                      static_cast<double>(kSecondsPerHour);
    }
    by_system[sys.id] = a;
  }

  for (const trace::FailureRecord& r : dataset.records()) {
    const auto it = by_system.find(r.system_id);
    HPCFAIL_EXPECTS(it != by_system.end(),
                    "record references a system not in the catalog");
    const trace::SystemInfo& sys = catalog.system(r.system_id);
    HPCFAIL_EXPECTS(r.node_id < sys.nodes,
                    "record references a node outside the system");
    const trace::NodeCategory& cat = sys.category_for_node(r.node_id);
    // Clip the repair interval to the node's production window.
    const Seconds begin = std::max(r.start, cat.production_start);
    const Seconds end = std::min(r.end, cat.production_end);
    if (end > begin) {
      it->second.downtime_hours +=
          static_cast<double>(end - begin) /
          static_cast<double>(kSecondsPerHour);
    }
    ++it->second.failures;
  }

  std::vector<SystemAvailability> result;
  SystemAvailability site;
  site.system_id = 0;
  site.hw_type = '*';
  for (auto& [id, a] : by_system) {
    if (a.node_hours > 0.0) {
      a.availability =
          std::max(0.0, 1.0 - a.downtime_hours / a.node_hours);
    }
    a.node_mtbf_hours = a.failures > 0
                            ? a.node_hours /
                                  static_cast<double>(a.failures)
                            : 0.0;
    site.node_hours += a.node_hours;
    site.downtime_hours += a.downtime_hours;
    site.failures += a.failures;
    result.push_back(a);
  }
  if (site.node_hours > 0.0) {
    site.availability =
        std::max(0.0, 1.0 - site.downtime_hours / site.node_hours);
  }
  site.node_mtbf_hours =
      site.failures > 0
          ? site.node_hours / static_cast<double>(site.failures)
          : 0.0;
  result.push_back(site);
  return result;
}

}  // namespace hpcfail::analysis
