// System availability derived from the failure trace: the fraction of
// node-time lost to repairs. This is the bottom-line metric the paper's
// statistics feed (cluster availability work [5, 25] in its intro), and
// the quantity checkpointing users plan around.
#pragma once

#include <vector>

#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

struct SystemAvailability {
  int system_id = 0;
  char hw_type = '?';
  double node_hours = 0.0;        ///< total in-production node-hours
  double downtime_hours = 0.0;    ///< node-hours spent in repair
  std::size_t failures = 0;
  /// 1 - downtime / node_hours, in [0, 1].
  double availability = 1.0;
  /// Mean time between failures per node, hours (node_hours / failures).
  double node_mtbf_hours = 0.0;
};

/// Availability per system plus the site-wide aggregate (system_id 0,
/// hw_type '*'). Downtime that extends past a node's production end is
/// clipped to the window. Systems without failures still appear (fully
/// available). Throws InvalidArgument when a record references a system
/// or node the catalog does not know (run trace::validate first for
/// dirty data).
std::vector<SystemAvailability> availability_analysis(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog);

}  // namespace hpcfail::analysis
