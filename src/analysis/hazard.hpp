// Model-free hazard-rate analysis of time between failures.
//
// The paper's hazard statements go through the fitted Weibull shape
// (0.7-0.8 => decreasing hazard: "not seeing a failure for a long time
// decreases the chance of seeing one in the near future"). This analyzer
// checks the same claim nonparametrically via the Nelson-Aalen cumulative
// hazard, treating each node's final failure-free interval as right-
// censored at the end of observation.
#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "stats/survival.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

struct HazardReport {
  /// Interarrival observations, censored where appropriate.
  std::vector<hpcfail::stats::SurvivalObservation> observations;
  std::size_t events = 0;
  std::size_t censored = 0;
  /// Nelson-Aalen cumulative hazard steps.
  std::vector<hpcfail::stats::SurvivalPoint> cumulative_hazard;
  /// Slope of log H(t) vs log t; < 1 means decreasing hazard (equals the
  /// shape parameter when the data is Weibull).
  double log_log_slope = 0.0;
  bool decreasing_hazard() const noexcept { return log_log_slope < 1.0; }
};

/// Per-node hazard analysis for one system: every node contributes its
/// observed interarrival times plus one censored interval from its last
/// failure to `censor_at` (defaults to the last failure time in the
/// dataset for that system). Throws InvalidArgument when fewer than
/// `min_events` interarrivals exist.
HazardReport node_hazard_analysis(const trace::FailureDataset& dataset,
                                  int system_id,
                                  std::optional<Seconds> censor_at = {},
                                  std::size_t min_events = 16);

}  // namespace hpcfail::analysis
