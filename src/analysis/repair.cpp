#include "analysis/repair.hpp"

#include <span>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

RepairReport repair_analysis(const trace::FailureDataset& dataset,
                             const trace::SystemCatalog& catalog) {
  hpcfail::obs::ScopedTimer timer("analysis.repair");
  HPCFAIL_EXPECTS(!dataset.empty(), "repair analysis of empty dataset");
  RepairReport report;

  // Table 2: per root cause. One fused pass per cause over the cause and
  // start/end columns; the unit conversion is hoisted out of the
  // per-record helper (the division stays a division so the samples match
  // the record-level path bit for bit).
  const trace::ColumnsView records = dataset.records();
  const std::span<const trace::RootCause> causes = records.causes();
  const std::span<const hpcfail::Seconds> starts = records.starts();
  const std::span<const hpcfail::Seconds> ends = records.ends();
  for (const trace::RootCause cause : trace::kAllRootCauses) {
    std::vector<double> minutes;
    for (std::size_t i = 0; i < causes.size(); ++i) {
      if (causes[i] == cause) {
        minutes.push_back(static_cast<double>(ends[i] - starts[i]) / 60.0);
      }
    }
    if (minutes.empty()) continue;
    RepairByCause entry;
    entry.cause = cause;
    entry.stats = hpcfail::stats::summarize(minutes);
    report.by_cause.push_back(entry);
  }

  const std::vector<double> all_minutes = dataset.repair_times_minutes();
  report.all = hpcfail::stats::summarize(all_minutes);

  // Fig 7(a): distribution fits over all repair times.
  report.fits = hpcfail::dist::fit_report(
      all_minutes, hpcfail::dist::standard_families());

  // Fig 7(b)/(c): per system, with the per-system distribution fits
  // batched across the shared pool.
  const trace::DatasetView view = dataset.view();
  std::vector<int> ids;
  std::vector<std::vector<double>> samples;
  for (const int id : dataset.index().system_ids()) {
    std::vector<double> minutes =
        view.for_system(id).repair_times_minutes();
    if (minutes.empty()) continue;
    ids.push_back(id);
    samples.push_back(std::move(minutes));
  }
  auto fit_reports = hpcfail::dist::fit_report_many(
      samples, hpcfail::dist::standard_families());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    RepairBySystem entry;
    entry.system_id = ids[i];
    entry.hw_type = catalog.system(ids[i]).hw_type;
    entry.failures = samples[i].size();
    const auto s = hpcfail::stats::summarize(samples[i]);
    entry.mean_minutes = s.mean;
    entry.median_minutes = s.median;
    entry.fits = std::move(fit_reports[i]);
    report.by_system.push_back(std::move(entry));
  }
  return report;
}

}  // namespace hpcfail::analysis
