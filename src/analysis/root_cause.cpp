#include "analysis/root_cause.hpp"

#include <span>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace hpcfail::analysis {

std::size_t breakdown_index(trace::RootCause cause) noexcept {
  return trace::cause_index(cause);
}

namespace {

void finalize(CauseBreakdown& b, const std::array<double, 6>& counts,
              const std::array<double, 6>& downtime) {
  double count_total = 0.0;
  double downtime_total = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    count_total += counts[i];
    downtime_total += downtime[i];
  }
  b.failures = static_cast<std::size_t>(count_total);
  b.downtime_minutes = downtime_total;
  for (std::size_t i = 0; i < 6; ++i) {
    b.count_percent[i] =
        count_total > 0.0 ? 100.0 * counts[i] / count_total : 0.0;
    b.downtime_percent[i] =
        downtime_total > 0.0 ? 100.0 * downtime[i] / downtime_total : 0.0;
  }
}

}  // namespace

RootCauseReport root_cause_breakdown(const trace::FailureDataset& dataset,
                                     const trace::SystemCatalog& catalog) {
  hpcfail::obs::ScopedTimer timer("analysis.root_cause");
  HPCFAIL_EXPECTS(!dataset.empty(), "root-cause breakdown of empty dataset");

  // Accumulate per hardware type and overall.
  const std::vector<char> types = catalog.hardware_types();
  std::vector<std::array<double, 6>> counts(types.size(),
                                             std::array<double, 6>{});
  std::vector<std::array<double, 6>> downtime(types.size(),
                                               std::array<double, 6>{});
  std::array<double, 6> all_counts{};
  std::array<double, 6> all_downtime{};

  // Fused column pass: the downtime conversion happens once per record
  // (the old code called downtime_minutes() twice) and only the four
  // touched columns stream through cache.
  const trace::ColumnsView records = dataset.records();
  const std::span<const int> system_ids = records.system_ids();
  const std::span<const trace::RootCause> causes = records.causes();
  const std::span<const hpcfail::Seconds> starts = records.starts();
  const std::span<const hpcfail::Seconds> ends = records.ends();
  for (std::size_t i = 0; i < system_ids.size(); ++i) {
    const char type = catalog.system(system_ids[i]).hw_type;
    const std::size_t ci = breakdown_index(causes[i]);
    const double minutes = static_cast<double>(ends[i] - starts[i]) / 60.0;
    all_counts[ci] += 1.0;
    all_downtime[ci] += minutes;
    for (std::size_t t = 0; t < types.size(); ++t) {
      if (types[t] == type) {
        counts[t][ci] += 1.0;
        downtime[t][ci] += minutes;
        break;
      }
    }
  }

  RootCauseReport report;
  for (std::size_t t = 0; t < types.size(); ++t) {
    double total = 0.0;
    for (const double c : counts[t]) total += c;
    if (total == 0.0) continue;  // type present in catalog but not in data
    CauseBreakdown b;
    b.label = std::string(1, types[t]);
    finalize(b, counts[t], downtime[t]);
    report.by_type.push_back(b);
  }
  report.all.label = "All";
  finalize(report.all, all_counts, all_downtime);
  return report;
}

double detail_cause_fraction(const trace::FailureDataset& dataset,
                             trace::DetailCause detail) {
  HPCFAIL_EXPECTS(!dataset.empty(), "detail fraction of empty dataset");
  std::size_t hits = 0;
  for (const trace::DetailCause d : dataset.records().details()) {
    if (d == detail) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.size());
}

}  // namespace hpcfail::analysis
