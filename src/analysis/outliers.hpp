// Statistical hot-node detection.
//
// Section 5.1 shows failures are not evenly spread over a system's nodes
// (graphics nodes 21-23 of system 20 hold 20% of its failures) and Fig
// 3(b) shows the per-node counts are inconsistent with a common-rate
// Poisson. This analyzer turns that observation into a test: under the
// null hypothesis that every node fails as a Poisson process with a
// common rate (scaled by each node's time in production), which nodes
// have significantly more failures than their exposure predicts?
// Bonferroni-corrected, so a flagged node is a defensible scheduling or
// maintenance decision, not a multiple-testing artifact.
#pragma once

#include <vector>

#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

struct NodeOutlier {
  int node_id = 0;
  trace::Workload workload = trace::Workload::compute;
  std::size_t failures = 0;
  double expected = 0.0;  ///< under the equal-rate null, given exposure
  /// One-sided p-value P(X >= failures) under Poisson(expected).
  double p_value = 1.0;
  /// p_value < alpha / node_count (Bonferroni).
  bool significant = false;
};

struct OutlierReport {
  int system_id = 0;
  double alpha = 0.0;
  std::vector<NodeOutlier> nodes;  ///< ascending p-value
  std::size_t significant_count = 0;
};

/// Tests every node of `system_id` against the equal-rate Poisson null.
/// Exposure is each node's production time from the catalog. Throws
/// InvalidArgument when the system has no failures or alpha is outside
/// (0, 1).
OutlierReport node_outlier_analysis(const trace::FailureDataset& dataset,
                                    const trace::SystemCatalog& catalog,
                                    int system_id, double alpha = 0.01);

}  // namespace hpcfail::analysis
