#include "analysis/rates.hpp"

#include "common/error.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

std::vector<SystemRate> failure_rates(const trace::FailureDataset& dataset,
                                      const trace::SystemCatalog& catalog) {
  hpcfail::obs::ScopedTimer timer("analysis.failure_rates");
  HPCFAIL_EXPECTS(!dataset.empty(), "failure rates of empty dataset");
  const trace::DatasetView view = dataset.view();
  std::vector<SystemRate> rates;
  for (const int id : dataset.index().system_ids()) {
    const trace::SystemInfo& sys = catalog.system(id);
    SystemRate r;
    r.system_id = id;
    r.hw_type = sys.hw_type;
    r.failures = view.for_system(id).size();
    r.production_years = sys.production_years();
    HPCFAIL_ASSERT(r.production_years > 0.0);
    r.failures_per_year =
        static_cast<double>(r.failures) / r.production_years;
    r.failures_per_year_per_proc =
        r.failures_per_year / static_cast<double>(sys.procs);
    rates.push_back(r);
  }
  return rates;
}

NodeDistributionReport node_distribution(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog, int system_id) {
  hpcfail::obs::ScopedTimer timer("analysis.node_distribution");
  const trace::SystemInfo& sys = catalog.system(system_id);
  const auto counts = dataset.view().for_system(system_id).failures_per_node();
  HPCFAIL_EXPECTS(!counts.empty(),
                  "system has no failures in the dataset");

  NodeDistributionReport report;
  report.system_id = system_id;

  std::size_t total = 0;
  std::size_t graphics_failures = 0;
  int graphics_nodes = 0;
  for (int node = 0; node < sys.nodes; ++node) {
    NodeCount nc;
    nc.node_id = node;
    nc.workload = sys.workload_of(node);
    const auto it = counts.find(node);
    nc.failures = it != counts.end() ? it->second : 0;
    total += nc.failures;
    if (nc.workload == trace::Workload::graphics) {
      ++graphics_nodes;
      graphics_failures += nc.failures;
    } else if (nc.workload == trace::Workload::compute) {
      report.compute_node_counts.push_back(
          static_cast<double>(nc.failures));
    }
    report.per_node.push_back(nc);
  }
  report.graphics_node_fraction =
      static_cast<double>(graphics_nodes) / static_cast<double>(sys.nodes);
  report.graphics_failure_fraction =
      total > 0 ? static_cast<double>(graphics_failures) /
                      static_cast<double>(total)
                : 0.0;

  if (report.compute_node_counts.size() >= 2) {
    report.count_fits = hpcfail::dist::fit_report(
        report.compute_node_counts, hpcfail::dist::count_families());
  }
  return report;
}

}  // namespace hpcfail::analysis
