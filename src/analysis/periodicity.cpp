#include "analysis/periodicity.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace hpcfail::analysis {

PeriodicityReport periodicity(const trace::FailureDataset& dataset) {
  hpcfail::obs::ScopedTimer timer("analysis.periodicity");
  HPCFAIL_EXPECTS(!dataset.empty(), "periodicity of empty dataset");
  PeriodicityReport report;
  // Whole-trace streaming: records() is already a zero-copy span, no
  // index needed.
  for (const trace::FailureRecord& r : dataset.records()) {
    report.by_hour[static_cast<std::size_t>(hour_of_day(r.start))] += 1.0;
    report.by_weekday[static_cast<std::size_t>(day_of_week(r.start))] += 1.0;
  }

  // Smooth hourly counts over a 3-hour window before taking the ratio, so
  // a single noisy hour doesn't define the peak or trough.
  std::array<double, 24> smooth{};
  for (std::size_t h = 0; h < 24; ++h) {
    smooth[h] = (report.by_hour[(h + 23) % 24] + report.by_hour[h] +
                 report.by_hour[(h + 1) % 24]) /
                3.0;
  }
  const double hi = *std::max_element(smooth.begin(), smooth.end());
  const double lo = *std::min_element(smooth.begin(), smooth.end());
  // A zero trough means the peak-to-trough ratio diverges; returning the
  // raw peak count here would let a count masquerade as a ratio.
  report.day_night_ratio =
      lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();

  const double weekend = (report.by_weekday[0] + report.by_weekday[6]) / 2.0;
  double weekday = 0.0;
  for (std::size_t d = 1; d <= 5; ++d) weekday += report.by_weekday[d];
  weekday /= 5.0;
  report.weekday_weekend_ratio =
      weekend > 0.0 ? weekday / weekend
                    : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace hpcfail::analysis
