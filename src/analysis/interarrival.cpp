#include "analysis/interarrival.hpp"

#include "common/error.hpp"
#include "obs/span.hpp"

namespace hpcfail::analysis {

InterarrivalReport interarrival_analysis(const trace::FailureDataset& dataset,
                                         const InterarrivalQuery& query,
                                         std::size_t min_gaps) {
  hpcfail::obs::ScopedTimer timer("analysis.interarrival");
  trace::FailureDataset scoped = dataset.for_system(query.system_id);
  if (query.from || query.to) {
    const Seconds from = query.from.value_or(
        scoped.empty() ? 0 : scoped.first_start());
    const Seconds to = query.to.value_or(
        scoped.empty() ? 0 : scoped.last_end() + 1);
    scoped = scoped.between(from, to);
  }

  InterarrivalReport report;
  report.query = query;
  report.gaps_seconds =
      query.node_id ? scoped.node_interarrivals(query.system_id,
                                                *query.node_id)
                    : scoped.system_interarrivals(query.system_id);
  HPCFAIL_EXPECTS(report.gaps_seconds.size() >= min_gaps,
                  "too few interarrival times for distribution fitting");

  report.summary = hpcfail::stats::summarize(report.gaps_seconds);
  std::size_t zeros = 0;
  for (const double g : report.gaps_seconds) {
    if (g == 0.0) ++zeros;
  }
  report.zero_fraction = static_cast<double>(zeros) /
                         static_cast<double>(report.gaps_seconds.size());

  // Records have 1-second resolution; exact-zero gaps (simultaneous
  // failures) are floored at one second for fitting, as any MLE must.
  report.fits = hpcfail::dist::fit_report(report.gaps_seconds,
                                          hpcfail::dist::standard_families(),
                                          /*floor_at=*/1.0);
  return report;
}

std::vector<NodeInterarrivalFits> per_node_interarrival_fits(
    const trace::FailureDataset& dataset, int system_id,
    std::size_t min_gaps) {
  hpcfail::obs::ScopedTimer timer("analysis.per_node_interarrival");
  const trace::FailureDataset scoped = dataset.for_system(system_id);

  std::vector<int> nodes;
  std::vector<std::vector<double>> samples;
  for (const auto& [node, count] : scoped.failures_per_node(system_id)) {
    if (count < min_gaps + 1) continue;  // n records -> n-1 gaps
    std::vector<double> gaps = scoped.node_interarrivals(system_id, node);
    if (gaps.size() < min_gaps) continue;
    nodes.push_back(node);
    samples.push_back(std::move(gaps));
  }

  // Same 1-second floor as interarrival_analysis: records have 1-second
  // resolution and simultaneous failures yield exact zeros.
  auto fit_reports = hpcfail::dist::fit_report_many(
      samples, hpcfail::dist::standard_families(), /*floor_at=*/1.0);

  std::vector<NodeInterarrivalFits> out;
  out.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    NodeInterarrivalFits entry;
    entry.node_id = nodes[i];
    entry.gap_count = samples[i].size();
    entry.fits = std::move(fit_reports[i]);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace hpcfail::analysis
