#include "analysis/interarrival.hpp"

#include "common/error.hpp"
#include "common/time.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

InterarrivalReport interarrival_analysis(const trace::FailureDataset& dataset,
                                         const InterarrivalQuery& query,
                                         std::size_t min_gaps) {
  hpcfail::obs::ScopedTimer timer("analysis.interarrival");
  trace::DatasetView scoped = dataset.view().for_system(query.system_id);
  if (query.from || query.to) {
    // Windowing an empty system used to default the open bound to 0 and
    // silently query the inverted range [from, 0); fail loudly instead.
    if (scoped.empty()) {
      throw ValidationError("interarrival query: system " +
                            std::to_string(query.system_id) +
                            " has no records to window");
    }
    const Seconds from = query.from.value_or(scoped.first_start());
    const Seconds to = query.to.value_or(scoped.last_end() + 1);
    if (from >= to) {
      throw ValidationError("interarrival query: empty or inverted window [" +
                            format_timestamp(from) + ", " +
                            format_timestamp(to) + ") for system " +
                            std::to_string(query.system_id));
    }
    scoped = scoped.between(from, to);
  }

  InterarrivalReport report;
  report.query = query;
  report.gaps_seconds = query.node_id
                            ? scoped.node_interarrivals(*query.node_id)
                            : scoped.system_interarrivals();
  HPCFAIL_EXPECTS(report.gaps_seconds.size() >= min_gaps,
                  "too few interarrival times for distribution fitting");

  report.summary = hpcfail::stats::summarize(report.gaps_seconds);
  std::size_t zeros = 0;
  for (const double g : report.gaps_seconds) {
    if (g == 0.0) ++zeros;
  }
  report.zero_fraction = static_cast<double>(zeros) /
                         static_cast<double>(report.gaps_seconds.size());

  // Records have 1-second resolution; exact-zero gaps (simultaneous
  // failures) are floored at one second for fitting, as any MLE must.
  report.fits = hpcfail::dist::fit_report(report.gaps_seconds,
                                          hpcfail::dist::standard_families(),
                                          /*floor_at=*/1.0);
  return report;
}

std::vector<NodeInterarrivalFits> per_node_interarrival_fits(
    const trace::FailureDataset& dataset, int system_id,
    std::size_t min_gaps) {
  hpcfail::obs::ScopedTimer timer("analysis.per_node_interarrival");
  // Single sweep over the per-(system, node) posting lists, replacing the
  // old per-node rescan of the whole system (O(records x nodes)).
  std::vector<trace::NodeInterarrivalGroup> groups =
      dataset.view().for_system(system_id).node_interarrival_groups(min_gaps);

  std::vector<std::vector<double>> samples;
  samples.reserve(groups.size());
  for (trace::NodeInterarrivalGroup& g : groups) {
    samples.push_back(std::move(g.gaps_seconds));
  }

  // Same 1-second floor as interarrival_analysis: records have 1-second
  // resolution and simultaneous failures yield exact zeros.
  auto fit_reports = hpcfail::dist::fit_report_many(
      samples, hpcfail::dist::standard_families(), /*floor_at=*/1.0);

  std::vector<NodeInterarrivalFits> out;
  out.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    NodeInterarrivalFits entry;
    entry.node_id = groups[i].node_id;
    entry.gap_count = samples[i].size();
    entry.fits = std::move(fit_reports[i]);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace hpcfail::analysis
