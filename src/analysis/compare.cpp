#include "analysis/compare.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/time.hpp"
#include "dist/lognormal.hpp"
#include "dist/weibull.hpp"
#include "trace/index.hpp"
#include "trace/types.hpp"

namespace hpcfail::analysis {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Pulls the fitted Weibull/LogNormal parameters out of a ranked report
/// (the FitReport holds type-erased Distributions).
void extract_parameters(CompareSite& site) {
  site.weibull_shape = kNan;
  site.weibull_scale = kNan;
  for (const dist::FitResult& fit : site.gap_fits) {
    if (const auto* w = dynamic_cast<const dist::Weibull*>(fit.model.get())) {
      site.weibull_shape = w->shape();
      site.weibull_scale = w->scale();
      break;
    }
  }
  site.repair_lognormal_mu = kNan;
  site.repair_lognormal_sigma = kNan;
  for (const dist::FitResult& fit : site.repair_fits) {
    if (const auto* ln =
            dynamic_cast<const dist::LogNormal*>(fit.model.get())) {
      site.repair_lognormal_mu = ln->mu();
      site.repair_lognormal_sigma = ln->sigma();
      break;
    }
  }
}

}  // namespace

CompareSite summarize_site(const CompareInput& input) {
  const trace::FailureDataset& ds = input.dataset;
  if (ds.empty()) {
    throw InvalidArgument("site '" + input.label +
                          "' has no records to compare");
  }
  CompareSite site;
  site.label = input.label;
  site.records = ds.size();

  // Rates: normalized by the observed node population and span. The
  // foreign studies report per-processor rates against their own
  // geometry, which the caller passes when known.
  site.span_years = years_between(ds.first_start(), ds.last_end());
  const double span = site.span_years > 0.0 ? site.span_years : kNan;
  std::size_t nodes = 0;
  std::vector<double> gaps;
  for (const int system_id : ds.system_ids()) {
    const trace::DatasetView view = ds.view().for_system(system_id);
    for (const trace::NodeInterarrivalGroup& group :
         view.node_interarrival_groups()) {
      ++nodes;
      gaps.insert(gaps.end(), group.gaps_seconds.begin(),
                  group.gaps_seconds.end());
    }
  }
  site.nodes = nodes;
  site.failures_per_node_year =
      static_cast<double>(site.records) / (static_cast<double>(nodes) * span);
  site.failures_per_proc_year =
      input.procs > 0.0
          ? static_cast<double>(site.records) / (input.procs * span)
          : kNan;

  // Root-cause mix over every record (Fig 1 shape, per site).
  const auto causes = ds.records().causes();
  for (const trace::RootCause cause : causes) {
    site.cause_fraction[trace::cause_index(cause)] += 1.0;
  }
  for (double& fraction : site.cause_fraction) {
    fraction /= static_cast<double>(site.records);
  }

  // Repair battery (Table 2 shape): moments plus the ranked fits.
  const std::vector<double> repair = ds.repair_times_minutes();
  site.repair_minutes = stats::summarize(repair);
  site.repair_fits = dist::fit_report(repair, dist::standard_families());

  // Interarrival battery (Fig 6 view (i), pooled): per-node gaps across
  // every system of the site, 1-second floor as everywhere else.
  if (!gaps.empty()) {
    site.gaps_seconds = stats::summarize(gaps);
    site.gap_fits =
        dist::fit_report(gaps, dist::standard_families(), /*floor_at=*/1.0);
  }
  extract_parameters(site);
  return site;
}

CompareReport compare_sites(const std::vector<CompareInput>& inputs) {
  if (inputs.empty()) {
    throw InvalidArgument("compare needs at least one site");
  }
  CompareReport report;
  report.sites.reserve(inputs.size());
  for (const CompareInput& input : inputs) {
    report.sites.push_back(summarize_site(input));
  }
  return report;
}

}  // namespace hpcfail::analysis
