// Section 5.1 / Figures 2 and 3: failure rates across systems and across
// the nodes of one system.
//
// Fig 2(a): average failures per year per system over its production time;
// Fig 2(b): the same normalized by processor count, showing rates are
// roughly proportional to size. Fig 3(a): failures per node of system 20;
// Fig 3(b): the CDF of per-node counts for compute-only nodes, fitted with
// Poisson / normal / lognormal — Poisson loses because node rates are
// heterogeneous.
#pragma once

#include <vector>

#include "dist/fit.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::analysis {

/// One row of Fig 2.
struct SystemRate {
  int system_id = 0;
  char hw_type = '?';
  std::size_t failures = 0;
  double production_years = 0.0;
  double failures_per_year = 0.0;        ///< Fig 2(a)
  double failures_per_year_per_proc = 0.0;  ///< Fig 2(b)
};

/// Fig 2 for every system present in the dataset (ascending id). Systems
/// in the catalog with no failures get a zero-count row only when they
/// appear in `dataset`; callers wanting all 22 rows pass the full trace.
std::vector<SystemRate> failure_rates(const trace::FailureDataset& dataset,
                                      const trace::SystemCatalog& catalog);

/// One bar of Fig 3(a).
struct NodeCount {
  int node_id = 0;
  trace::Workload workload = trace::Workload::compute;
  std::size_t failures = 0;
};

/// Fig 3 for one system.
struct NodeDistributionReport {
  int system_id = 0;
  std::vector<NodeCount> per_node;  ///< every node, including zero-failure
  /// Share of failures held by the graphics nodes (system 20's nodes
  /// 21-23 hold ~20% with ~6% of the nodes).
  double graphics_node_fraction = 0.0;
  double graphics_failure_fraction = 0.0;
  /// Count-distribution fits over compute-only nodes (Fig 3b), best
  /// first: Poisson vs normal vs lognormal.
  hpcfail::dist::FitReport count_fits;
  /// The compute-only per-node counts the fits were computed on.
  std::vector<double> compute_node_counts;
};

/// Computes Fig 3 for `system_id`. Throws InvalidArgument when the system
/// has no failures in the dataset.
NodeDistributionReport node_distribution(
    const trace::FailureDataset& dataset,
    const trace::SystemCatalog& catalog, int system_id);

}  // namespace hpcfail::analysis
