// Section 6 / Table 2 and Figure 7: repair-time statistics by root cause,
// distribution fits over all repair times, and per-system mean/median.
#pragma once

#include <optional>
#include <vector>

#include "dist/fit.hpp"
#include "stats/descriptive.hpp"
#include "trace/catalog.hpp"
#include "trace/dataset.hpp"
#include "trace/types.hpp"

namespace hpcfail::analysis {

/// One column of Table 2 (minutes).
struct RepairByCause {
  trace::RootCause cause = trace::RootCause::unknown;
  hpcfail::stats::Summary stats;  ///< mean/median/stddev/C^2, minutes
};

/// One bar of Fig 7(b)/(c).
struct RepairBySystem {
  int system_id = 0;
  char hw_type = '?';
  double mean_minutes = 0.0;
  double median_minutes = 0.0;
  std::size_t failures = 0;
  /// Standard-family fits of this system's repair times, best first
  /// (batched across systems via dist::fit_report_many); empty when no
  /// family converged.
  hpcfail::dist::FitReport fits;
};

struct RepairReport {
  /// Table 2: one entry per root cause present in the data, plus the
  /// aggregate.
  std::vector<RepairByCause> by_cause;
  hpcfail::stats::Summary all;

  /// Fig 7(a): fits of the four standard families over all repair times,
  /// best first (the paper finds lognormal best, exponential worst).
  hpcfail::dist::FitReport fits;

  /// Fig 7(b)/(c), ascending system id.
  std::vector<RepairBySystem> by_system;
};

/// Computes Table 2 + Fig 7 from a dataset. Throws InvalidArgument on an
/// empty dataset.
RepairReport repair_analysis(const trace::FailureDataset& dataset,
                             const trace::SystemCatalog& catalog);

}  // namespace hpcfail::analysis
