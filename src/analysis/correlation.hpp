// Failure-correlation analysis -- the question the paper explicitly left
// open ("While we did not perform a rigorous analysis of correlations
// between nodes, this high number of simultaneous failures indicates the
// existence of a tight correlation...", Section 5.3; Nath et al. study
// its consequences for storage placement).
//
// Three complementary measures:
//  * simultaneous-failure statistics: how often one incident takes down
//    several nodes at once, and how large those bursts are;
//  * the lag-k autocorrelation of the system-wide interarrival sequence
//    (zero for a renewal process, positive under clustering);
//  * daily-count overdispersion: Var/Mean of failures per day (the index
//    of dispersion; 1 under Poisson, larger under temporal clustering).
#pragma once

#include <cstddef>
#include <vector>

#include "trace/dataset.hpp"

namespace hpcfail::analysis {

struct BurstStats {
  std::size_t total_failures = 0;
  std::size_t burst_events = 0;     ///< instants with >= 2 failures
  std::size_t burst_failures = 0;   ///< failures inside those instants
  std::size_t largest_burst = 0;    ///< most failures at one instant
  /// Fraction of all failures that are part of a simultaneous burst.
  double burst_fraction() const noexcept {
    return total_failures > 0
               ? static_cast<double>(burst_failures) /
                     static_cast<double>(total_failures)
               : 0.0;
  }
};

struct CorrelationReport {
  BurstStats bursts;
  /// Autocorrelation of the interarrival sequence at lags 1..max_lag.
  std::vector<double> interarrival_autocorrelation;
  /// Index of dispersion of daily failure counts (Var/Mean).
  double daily_dispersion = 0.0;
};

/// Lag-k sample autocorrelations of a sequence, k = 1..max_lag. Throws
/// InvalidArgument when the sequence is shorter than max_lag + 2 or has
/// zero variance.
std::vector<double> autocorrelation(std::span<const double> sequence,
                                    std::size_t max_lag);

/// Correlation analysis for one system over an optional time window.
/// Simultaneity is judged at the trace's 1-second resolution. Throws
/// InvalidArgument when the system has fewer than ~32 failures.
CorrelationReport correlation_analysis(const trace::FailureDataset& dataset,
                                       int system_id,
                                       std::size_t max_lag = 10);

}  // namespace hpcfail::analysis
