#include "analysis/outliers.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dist/poisson.hpp"
#include "obs/span.hpp"
#include "trace/index.hpp"

namespace hpcfail::analysis {

OutlierReport node_outlier_analysis(const trace::FailureDataset& dataset,
                                    const trace::SystemCatalog& catalog,
                                    int system_id, double alpha) {
  hpcfail::obs::ScopedTimer timer("analysis.outliers");
  HPCFAIL_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  const trace::SystemInfo& sys = catalog.system(system_id);
  const auto counts = dataset.view().for_system(system_id).failures_per_node();
  HPCFAIL_EXPECTS(!counts.empty(), "system has no failures in the dataset");

  std::size_t total = 0;
  for (const auto& [node, count] : counts) total += count;

  // Exposure-weighted null: node i's expected share is its production
  // time divided by the sum over all nodes.
  std::vector<double> exposure(static_cast<std::size_t>(sys.nodes), 0.0);
  double exposure_total = 0.0;
  for (int node = 0; node < sys.nodes; ++node) {
    const trace::NodeCategory& c = sys.category_for_node(node);
    const double t =
        static_cast<double>(c.production_end - c.production_start);
    exposure[static_cast<std::size_t>(node)] = t;
    exposure_total += t;
  }
  HPCFAIL_ASSERT(exposure_total > 0.0);

  OutlierReport report;
  report.system_id = system_id;
  report.alpha = alpha;
  const double threshold = alpha / static_cast<double>(sys.nodes);
  for (int node = 0; node < sys.nodes; ++node) {
    NodeOutlier entry;
    entry.node_id = node;
    entry.workload = sys.workload_of(node);
    const auto it = counts.find(node);
    entry.failures = it != counts.end() ? it->second : 0;
    entry.expected = static_cast<double>(total) *
                     exposure[static_cast<std::size_t>(node)] /
                     exposure_total;
    if (entry.expected > 0.0 && entry.failures > 0) {
      const hpcfail::dist::Poisson null_model(entry.expected);
      // One-sided: P(X >= observed) = 1 - P(X <= observed - 1).
      entry.p_value =
          1.0 - null_model.cdf(static_cast<double>(entry.failures) - 1.0);
    }
    entry.significant = entry.p_value < threshold;
    if (entry.significant) ++report.significant_count;
    report.nodes.push_back(entry);
  }
  std::sort(report.nodes.begin(), report.nodes.end(),
            [](const NodeOutlier& a, const NodeOutlier& b) {
              if (a.p_value != b.p_value) return a.p_value < b.p_value;
              return a.node_id < b.node_id;
            });
  return report;
}

}  // namespace hpcfail::analysis
