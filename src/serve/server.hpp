// The `hpcfail serve` daemon: streaming ingest + live query serving.
//
// Two threads, two listening sockets:
//
//   * the ingest thread accepts TCP connections speaking the line
//     protocol (one CSV row per line, see trace/source.hpp), feeds each
//     connection through its own trace::LineSource into the shared
//     trace::LiveDataset (incremental index, see trace/ingest.hpp) and
//     serve::LiveAnalytics (windowed moment cells), and optionally tails
//     an appended file (trace::TailSource). Malformed lines are rejected
//     and counted (serve.rejected_events) — one bad producer cannot take
//     the daemon down.
//
//   * the HTTP thread serves many concurrent readers a minimal HTTP/1.0
//     GET surface: /healthz, /stats (ingest accounting JSON), /report?
//     system=N&window_hours=H (windowed moments + streaming FitReport
//     JSON), /metrics (the src/obs Prometheus exporter over the live
//     registry) and /shutdown. Reports are computed from the analytics
//     cells under a short mutex — never from a dataset rebuild, so
//     readers do not block on ingest (the epoch merges run on the ingest
//     thread, off the readers' path).
//
// Backpressure: the ingest loop reads at most one chunk per connection
// per poll round and appends synchronously, so a producer that outruns
// the daemon is throttled by TCP flow control (the socket buffer fills
// and the producer's write blocks) rather than by unbounded queueing —
// memory stays bounded by the tail + one partial line per connection.
//
// stop() is async-signal-safe (one write to a self-pipe), so the CLI
// installs it directly as its SIGINT/SIGTERM handler.
//
// Error taxonomy (consistent with the CLI's 0/1/2 contract): socket and
// bind failures throw IoError; invalid options throw ValidationError;
// malformed event lines never throw — they reject-and-count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/analytics.hpp"
#include "trace/dataset.hpp"
#include "trace/ingest.hpp"
#include "trace/source.hpp"

namespace hpcfail::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int ingest_port = 0;  ///< 0 = ephemeral (bound port via ingest_port())
  int http_port = 0;    ///< 0 = ephemeral
  Seconds window_seconds = 24 * kSecondsPerHour;  ///< default /report window
  Seconds bucket_seconds = kSecondsPerHour;
  std::size_t max_buckets = 24 * 14;
  trace::LiveDataset::Options epoch;  ///< seal policy
  std::string tail_path;              ///< optional appended-file to follow
  /// Stop automatically after this many accepted events (0 = run until
  /// stop()/shutdown). Lets smoke tests bound a run without a race.
  std::uint64_t max_events = 0;
};

class Server {
 public:
  /// Validates options; does not bind yet. Throws ValidationError on an
  /// invalid port/window/bucket configuration.
  explicit Server(ServerOptions options);
  /// Same, with the dataset and analytics pre-seeded from `seed`.
  Server(ServerOptions options, trace::FailureDataset seed);
  ~Server();  ///< stop() + join

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both sockets and starts the ingest and HTTP threads. Throws
  /// IoError when a socket cannot be created or bound.
  void start();

  /// Requests shutdown; async-signal-safe (a single self-pipe write).
  void stop() noexcept;

  /// Blocks until both threads have exited.
  void wait();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound ports (valid after start(); ephemeral requests resolve here).
  int ingest_port() const noexcept { return bound_ingest_port_; }
  int http_port() const noexcept { return bound_http_port_; }

  std::uint64_t events_ingested() const noexcept {
    return events_ingested_.load(std::memory_order_acquire);
  }
  std::uint64_t events_rejected() const noexcept {
    return events_rejected_.load(std::memory_order_acquire);
  }
  std::uint64_t http_requests() const noexcept {
    return http_requests_.load(std::memory_order_acquire);
  }

  /// The live dataset. Snapshot/epoch accessors are safe while running;
  /// everything else only after wait() returns.
  const trace::LiveDataset& dataset() const noexcept { return live_; }

 private:
  struct Connection;

  void ingest_loop();
  void http_loop();
  void ingest_chunk(Connection& conn, std::string_view bytes);
  void drain_source(trace::Source& source);
  void update_gauges();
  std::string handle_request(const std::string& target, int& status);
  std::string stats_json() const;

  ServerOptions options_;
  trace::LiveDataset live_;
  LiveAnalytics analytics_;
  /// Guards analytics_ and the rejected-line bookkeeping shared between
  /// the ingest loop (writes) and /report, /stats (reads).
  mutable std::mutex analytics_mutex_;

  std::thread ingest_thread_;
  std::thread http_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe; write side used by stop()
  int ingest_fd_ = -1;
  int http_fd_ = -1;
  int bound_ingest_port_ = 0;
  int bound_http_port_ = 0;

  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> events_rejected_{0};
  std::atomic<std::uint64_t> bytes_ingested_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> http_requests_{0};

  /// events/sec gauge state (ingest thread only).
  std::uint64_t rate_last_events_ = 0;
  std::chrono::steady_clock::time_point rate_last_time_;
  std::chrono::steady_clock::time_point last_event_time_;
};

}  // namespace hpcfail::serve
