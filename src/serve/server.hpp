// The `hpcfail serve` daemon: streaming ingest + live query serving.
//
// N ingest threads + one HTTP thread, two listening sockets:
//
//   * each ingest thread owns one shard: a partition of the TCP
//     connections speaking the line protocol (one CSV row per line, see
//     trace/source.hpp), fed through per-connection trace::LineSources
//     into that shard's tail of the shared trace::LiveDataset
//     (incremental index, see trace/ingest.hpp) and the shared
//     serve::LiveAnalytics (windowed moment cells, short mutex per
//     small batch). Shard 0 additionally owns the accept loop — new
//     connections are handed round-robin to the shards over per-shard
//     notify pipes — plus the optional appended-file tail
//     (trace::TailSource) and the once-per-second gauge refresh.
//     Malformed lines are rejected and counted (serve.rejected_events,
//     and per shard in /stats) — one bad producer cannot take the
//     daemon down. Seal-time merges run on whichever ingest thread
//     trips the rebuild threshold; the sealed snapshot is bit-identical
//     to a from-scratch build at any --ingest-threads count (the
//     LiveDataset determinism contract).
//
//   * the HTTP thread serves many concurrent readers a minimal HTTP/1.0
//     GET surface: /healthz, /stats (ingest accounting JSON), /report?
//     system=N&window_hours=H (windowed moments + streaming FitReport
//     JSON), /metrics (the src/obs Prometheus exporter over the live
//     registry) and /shutdown. Reports are computed from the analytics
//     cells under a short mutex — never from a dataset rebuild, so
//     readers do not block on ingest. Every request is bounded by an
//     overall deadline (http_request_deadline_ms), not just a per-read
//     timeout — a client trickling one byte per 1.9s cannot hold the
//     thread and starve /healthz — and response writes retry
//     interrupted sends (send_fully) so signal load cannot silently
//     truncate /metrics or /report bodies.
//
// Retention: when the LiveDataset options enable a horizon
// (retain_seconds / max_sealed_events), raw events older than the
// horizon are compacted into per-(system, node, cause) SuffStats at
// seal time; /stats reports compacted_events and retention_horizon,
// and the analytics windows are trimmed to the same horizon.
//
// Backpressure: each ingest thread reads at most one chunk per
// connection per poll round and appends synchronously, so a producer
// that outruns the daemon is throttled by TCP flow control (the socket
// buffer fills and the producer's write blocks) rather than by
// unbounded queueing — memory stays bounded by the tails + one partial
// line per connection (and by the retention policy when enabled).
//
// stop() is async-signal-safe (one write to a self-pipe), so the CLI
// installs it directly as its SIGINT/SIGTERM handler.
//
// Error taxonomy (consistent with the CLI's 0/1/2 contract): socket and
// bind failures throw IoError; invalid options throw ValidationError;
// malformed event lines never throw — they reject-and-count.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/analytics.hpp"
#include "trace/dataset.hpp"
#include "trace/ingest.hpp"
#include "trace/source.hpp"

namespace hpcfail::serve {

/// Writes all of `data` to a connected socket, retrying sends
/// interrupted by signals (EINTR). Returns the bytes actually written —
/// short only when the peer is gone or a send timeout (SO_SNDTIMEO)
/// expired. Exposed for the truncation regression tests.
std::size_t send_fully(int fd, std::string_view data) noexcept;

struct ServerOptions {
  std::string host = "127.0.0.1";
  int ingest_port = 0;  ///< 0 = ephemeral (bound port via ingest_port())
  int http_port = 0;    ///< 0 = ephemeral
  Seconds window_seconds = 24 * kSecondsPerHour;  ///< default /report window
  Seconds bucket_seconds = kSecondsPerHour;
  std::size_t max_buckets = 24 * 14;
  /// Ingest shard count. Mirrored into epoch.shards (the LiveDataset
  /// partition count) by the Server constructor.
  std::size_t ingest_threads = 1;
  trace::LiveDataset::Options epoch;  ///< seal + retention policy
  std::string tail_path;              ///< optional appended-file to follow
  /// Wire format for ingested lines: empty = the native CSV row format,
  /// otherwise a registered adapter name (trace/adapters/adapter.hpp).
  /// Applies to every ingest connection and the tailed file alike.
  /// Unknown names throw ValidationError at construction.
  std::string ingest_format;
  /// Stop automatically after this many accepted events (0 = run until
  /// stop()/shutdown). Lets smoke tests bound a run without a race.
  std::uint64_t max_events = 0;
  /// Overall wall-clock budget for reading one HTTP request, from
  /// accept to a complete request line.
  int http_request_deadline_ms = 2000;
};

class Server {
 public:
  /// Validates options; does not bind yet. Throws ValidationError on an
  /// invalid port/window/bucket/thread configuration.
  explicit Server(ServerOptions options);
  /// Same, with the dataset and analytics pre-seeded from `seed`.
  Server(ServerOptions options, trace::FailureDataset seed);
  ~Server();  ///< stop() + join

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both sockets and starts the ingest and HTTP threads. Throws
  /// IoError when a socket cannot be created or bound.
  void start();

  /// Requests shutdown; async-signal-safe (a single self-pipe write).
  void stop() noexcept;

  /// Blocks until all threads have exited.
  void wait();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound ports (valid after start(); ephemeral requests resolve here).
  int ingest_port() const noexcept { return bound_ingest_port_; }
  int http_port() const noexcept { return bound_http_port_; }

  std::uint64_t events_ingested() const noexcept {
    return events_ingested_.load(std::memory_order_acquire);
  }
  std::uint64_t events_rejected() const noexcept {
    return events_rejected_.load(std::memory_order_acquire);
  }
  std::uint64_t http_requests() const noexcept {
    return http_requests_.load(std::memory_order_acquire);
  }
  /// HTTP requests dropped at the overall per-request deadline.
  std::uint64_t http_request_timeouts() const noexcept {
    return http_timeouts_.load(std::memory_order_acquire);
  }
  /// Responses cut short by a dead peer or send timeout.
  std::uint64_t http_truncated_responses() const noexcept {
    return http_truncated_.load(std::memory_order_acquire);
  }

  /// The live dataset. Snapshot/epoch/size/compaction accessors are
  /// safe while running; everything else only after wait() returns.
  const trace::LiveDataset& dataset() const noexcept { return live_; }

 private:
  struct Connection;
  struct IngestShard;

  void ingest_loop(IngestShard& shard);
  void accept_ingest_connections();
  void adopt_pending(IngestShard& shard,
                     std::vector<std::unique_ptr<Connection>>& conns);
  void http_loop();
  void ingest_chunk(IngestShard& shard, Connection& conn,
                    std::string_view bytes);
  void drain_source(IngestShard& shard, trace::Source& source);
  void update_gauges();
  void compact_analytics_to_horizon();
  std::string handle_request(const std::string& target, int& status);
  std::string stats_json() const;

  ServerOptions options_;
  /// Resolved from options_.ingest_format (null = native CSV); owned by
  /// the static adapter registry, so the pointer outlives the server.
  const trace::Adapter* adapter_ = nullptr;
  trace::LiveDataset live_;
  LiveAnalytics analytics_;
  /// Guards analytics_ and the rejected-line bookkeeping shared between
  /// the ingest loops (writes) and /report, /stats (reads).
  mutable std::mutex analytics_mutex_;

  std::vector<std::unique_ptr<IngestShard>> shards_;
  std::vector<std::thread> ingest_threads_;
  std::thread http_thread_;
  std::atomic<std::size_t> live_ingest_threads_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  int stop_pipe_[2] = {-1, -1};  ///< self-pipe; write side used by stop()
  int ingest_fd_ = -1;
  int http_fd_ = -1;
  int bound_ingest_port_ = 0;
  int bound_http_port_ = 0;

  std::atomic<std::uint64_t> events_ingested_{0};
  std::atomic<std::uint64_t> events_rejected_{0};
  std::atomic<std::uint64_t> bytes_ingested_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> http_timeouts_{0};
  std::atomic<std::uint64_t> http_truncated_{0};

  /// events/sec gauge + analytics-compaction state (shard 0 only).
  std::uint64_t rate_last_events_ = 0;
  std::chrono::steady_clock::time_point rate_last_time_;
  std::atomic<std::chrono::steady_clock::time_point::rep> last_event_ns_{0};
  Seconds analytics_horizon_ = std::numeric_limits<Seconds>::min();
  std::uint64_t next_shard_rr_ = 0;
};

}  // namespace hpcfail::serve
