#include "serve/analytics.hpp"

#include <algorithm>
#include <tuple>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "trace/types.hpp"

namespace hpcfail::serve {

LiveAnalytics::LiveAnalytics(Options options) : options_(options) {
  repair_opts_.bucket_seconds = options_.bucket_seconds;
  repair_opts_.max_buckets = options_.max_buckets;
  repair_opts_.floor_at = options_.repair_floor_minutes;
  gap_opts_.bucket_seconds = options_.bucket_seconds;
  gap_opts_.max_buckets = options_.max_buckets;
  gap_opts_.floor_at = options_.gap_floor_seconds;
}

LiveAnalytics::Cell& LiveAnalytics::cell(int system_id, int node_id,
                                         trace::RootCause cause) {
  const auto key = std::make_tuple(system_id, node_id, cause);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell fresh{dist::SlidingSuffStats(repair_opts_),
               dist::SlidingSuffStats(gap_opts_)};
    it = cells_.emplace(key, std::move(fresh)).first;
  }
  return it->second;
}

void LiveAnalytics::observe(const trace::FailureRecord& r) {
  ++events_;
  if (r.start > latest_at_) latest_at_ = r.start;

  Cell& c = cell(r.system_id, r.node_id, r.cause);
  c.repair_minutes.add(r.start, r.downtime_minutes());

  // Per-node gap: consecutive failures of the same node, attributed at
  // (and to the cause of) the later event. Out-of-order arrivals with a
  // negative gap are skipped — the live posting lists in trace::
  // LiveDataset remain the exact source for those.
  const std::pair<int, int> node_key{r.system_id, r.node_id};
  auto last = last_node_start_.find(node_key);
  if (last != last_node_start_.end()) {
    const Seconds gap = r.start - last->second;
    if (gap >= 0) {
      c.node_gaps.add(r.start, static_cast<double>(gap));
      last->second = r.start;
    }
  } else {
    last_node_start_.emplace(node_key, r.start);
  }

  auto sit = systems_.find(r.system_id);
  if (sit == systems_.end()) {
    SystemState fresh;
    fresh.system_gaps = dist::SlidingSuffStats(gap_opts_);
    sit = systems_.emplace(r.system_id, std::move(fresh)).first;
  }
  SystemState& sys = sit->second;
  ++sys.events;
  if (sys.has_last) {
    const Seconds gap = r.start - sys.last_start;
    if (gap >= 0) {
      sys.system_gaps.add(r.start, static_cast<double>(gap));
      sys.last_start = r.start;
    }
  } else {
    sys.last_start = r.start;
    sys.has_last = true;
  }
}

void LiveAnalytics::compact_before(Seconds horizon) {
  for (auto& [key, c] : cells_) {
    compacted_ += c.repair_minutes.evict_before(horizon).n;
    compacted_ += c.node_gaps.evict_before(horizon).n;
  }
  for (auto& [id, sys] : systems_) {
    compacted_ += sys.system_gaps.evict_before(horizon).n;
  }
}

WindowReport LiveAnalytics::report(int system_id, Seconds window) const {
  WindowReport out;
  out.system_id = system_id;
  out.now = latest_at_;
  out.window = window > 0 ? window : 24 * kSecondsPerHour;

  out.repair_minutes.floor_at = options_.repair_floor_minutes;
  out.node_gaps_seconds.floor_at = options_.gap_floor_seconds;
  out.system_gaps_seconds.floor_at = options_.gap_floor_seconds;

  std::map<trace::RootCause, dist::SuffStats> by_cause;
  const auto first = cells_.lower_bound(
      std::make_tuple(system_id, 0, static_cast<trace::RootCause>(0)));
  for (auto it = first;
       it != cells_.end() && std::get<0>(it->first) == system_id; ++it) {
    const dist::SuffStats repair =
        it->second.repair_minutes.window_stats(out.now, out.window);
    const dist::SuffStats gaps =
        it->second.node_gaps.window_stats(out.now, out.window);
    out.repair_minutes.merge(repair);
    out.node_gaps_seconds.merge(gaps);
    if (repair.n > 0) {
      auto& slot = by_cause[std::get<2>(it->first)];
      if (slot.n == 0) slot.floor_at = repair.floor_at;
      slot.merge(repair);
    }
  }
  for (auto& [cause, stats] : by_cause) {
    out.by_cause.push_back(CauseWindow{cause, stats});
  }

  const auto sys = systems_.find(system_id);
  if (sys != systems_.end()) {
    out.events_total = sys->second.events;
    out.system_gaps_seconds =
        sys->second.system_gaps.window_stats(out.now, out.window);
  }

  try {
    out.repair_fits = dist::fit_report_from_stats(out.repair_minutes);
  } catch (const Error&) {
    // Degenerate window (empty or constant): serve moments without fits.
  }
  try {
    out.node_gap_fits = dist::fit_report_from_stats(out.node_gaps_seconds);
  } catch (const Error&) {
  }
  return out;
}

std::vector<int> LiveAnalytics::system_ids() const {
  std::vector<int> ids;
  ids.reserve(systems_.size());
  for (const auto& [id, state] : systems_) ids.push_back(id);
  return ids;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

void append_stats(std::string& out, const char* name,
                  const dist::SuffStats& s) {
  out += '"';
  out += name;
  out += "\":{\"n\":" + std::to_string(s.n);
  if (s.n > 0) {
    out += ",\"mean\":" + format_double(s.mean());
    out += ",\"cv2\":" + format_double(s.cv_squared());
    out += ",\"min\":" + format_double(s.min);
    out += ",\"max\":" + format_double(s.max);
  }
  out += '}';
}

void append_fits(std::string& out, const char* name,
                 const dist::FitReport& fits) {
  out += '"';
  out += name;
  out += "\":[";
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const dist::FitResult& f = fits[i];
    if (i != 0) out += ',';
    out += "{\"family\":\"" + dist::to_string(f.family) + '"';
    out += ",\"nll\":" + format_double(f.nll);
    out += ",\"aic\":" + format_double(f.aic);
    out += ",\"model\":\"" + json_escape(f.model->describe()) + "\"}";
  }
  out += ']';
}

}  // namespace

std::string to_json(const WindowReport& report) {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"hpcfail.serve.report\",\"version\":1";
  out += ",\"system\":" + std::to_string(report.system_id);
  out += ",\"window_seconds\":" + std::to_string(report.window);
  out += ",\"now\":\"" + format_timestamp(report.now) + '"';
  out += ",\"events_total\":" + std::to_string(report.events_total);
  out += ',';
  append_stats(out, "repair_minutes", report.repair_minutes);
  out += ',';
  append_stats(out, "node_gaps_seconds", report.node_gaps_seconds);
  out += ',';
  append_stats(out, "system_gaps_seconds", report.system_gaps_seconds);
  out += ",\"by_cause\":[";
  for (std::size_t i = 0; i < report.by_cause.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"cause\":\"" + trace::to_string(report.by_cause[i].cause) + "\",";
    append_stats(out, "repair_minutes", report.by_cause[i].repair_minutes);
    out += '}';
  }
  out += "],";
  append_fits(out, "repair_fits", report.repair_fits);
  out += ',';
  append_fits(out, "node_gap_fits", report.node_gap_fits);
  out += ",\"compacted\":{\"events\":" +
         std::to_string(report.compacted_events);
  out += ",\"by_cause\":[";
  for (std::size_t i = 0; i < report.compacted_by_cause.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"cause\":\"" +
           trace::to_string(report.compacted_by_cause[i].cause) + "\",";
    append_stats(out, "repair_minutes",
                 report.compacted_by_cause[i].repair_minutes);
    out += '}';
  }
  out += "]}";
  out += '}';
  return out;
}

}  // namespace hpcfail::serve
