// Historical-trace replay client (`hpcfail replay`): feeds a recorded
// failure trace through a running daemon's TCP line-protocol ingest at a
// scaled wall clock.
//
// Replay walks the trace in global start order and assigns each record
// to one of `connections` persistent TCP connections by a stable
// (system, node) hash, so every node's events travel one connection in
// order — the daemon's per-connection LineSources then see exactly the
// per-node sequences the trace recorded, while multiple connections
// exercise the server's sharded ingest the way independent producers
// would. With speedup S, an event recorded T seconds after the trace
// start is sent S times sooner (wall clock = trace clock / S); speedup 0
// streams as fast as TCP accepts the bytes (the throughput-bench mode).
//
// Pacing is sleep-until against absolute deadlines (start + offset/S),
// so scheduling jitter does not accumulate across a long replay.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "trace/dataset.hpp"

namespace hpcfail::trace {
class Adapter;
}  // namespace hpcfail::trace

namespace hpcfail::serve {

struct ReplayOptions {
  std::string host = "127.0.0.1";
  int port = 0;               ///< daemon ingest port (required)
  double speedup = 0.0;       ///< trace-seconds per wall-second; 0 = max rate
  std::size_t connections = 1;
  std::uint64_t limit = 0;    ///< replay at most N events (0 = whole trace)
  /// Wire format: null = native CSV rows; otherwise each record is sent
  /// as `adapter->format_line(...)`, matching a daemon started with the
  /// same --format. Pointer must outlive the call (registry adapters do).
  const trace::Adapter* adapter = nullptr;
};

struct ReplayStats {
  std::uint64_t events_sent = 0;
  std::uint64_t bytes_sent = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  Seconds trace_span = 0;  ///< last minus first replayed start timestamp
};

/// Replays `dataset` per `options`. Blocks until every event has been
/// written and all connections are closed (the bytes are then in the
/// daemon's socket buffers or beyond — pair with polling /stats to wait
/// for full ingestion). Throws ValidationError on bad options and
/// IoError when a connection cannot be established or breaks mid-send.
ReplayStats replay_dataset(const trace::FailureDataset& dataset,
                           const ReplayOptions& options);

}  // namespace hpcfail::serve
