// Windowed live analytics for the streaming daemon.
//
// LiveAnalytics keeps one SlidingSuffStats cell per (system, node,
// root-cause) for repair times and per-node failure gaps, plus a
// per-system cell for the system-view failure process (Section 5.3's two
// views), all updated in O(log buckets) per event. report() merges the
// covered buckets and derives the windowed moments (mean, C²) and a
// streaming FitReport (dist::fit_report_from_stats) — no trace rescan,
// no retained samples, so a report over any window is O(cells x buckets)
// regardless of how many events were ingested.
//
// Windows are anchored at the *trace* clock (the latest event timestamp
// seen), not the wall clock, so replayed historical traces report
// sensibly. Not thread-safe: the server serializes observe()/report()
// behind its own mutex (both are cheap — neither ever triggers an index
// rebuild).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "dist/fit.hpp"
#include "dist/window.hpp"
#include "trace/record.hpp"

namespace hpcfail::serve {

/// One root cause's windowed slice of a report.
struct CauseWindow {
  trace::RootCause cause = trace::RootCause::unknown;
  dist::SuffStats repair_minutes;
};

/// The windowed view of one system, as served by /report.
struct WindowReport {
  int system_id = 0;
  Seconds now = 0;     ///< window end (latest event time seen)
  Seconds window = 0;  ///< window length, seconds
  std::uint64_t events_total = 0;  ///< system's events since startup
  dist::SuffStats repair_minutes;      ///< windowed, all causes
  dist::SuffStats node_gaps_seconds;   ///< per-node view gaps
  dist::SuffStats system_gaps_seconds; ///< system-view gaps
  std::vector<CauseWindow> by_cause;   ///< ascending cause, non-empty only
  dist::FitReport repair_fits;         ///< empty when degenerate
  dist::FitReport node_gap_fits;       ///< empty when degenerate
  /// Compacted-ledger view (dataset retention): this system's raw events
  /// dropped past the retention horizon, surfaced as per-cause pooled
  /// repair SuffStats so /report still accounts for pre-horizon history.
  /// Zero/empty when retention never compacted anything for the system.
  std::uint64_t compacted_events = 0;
  std::vector<CauseWindow> compacted_by_cause;  ///< ascending cause
};

class LiveAnalytics {
 public:
  struct Options {
    Seconds bucket_seconds = kSecondsPerHour;
    std::size_t max_buckets = 24 * 14;  ///< two weeks of hourly buckets
    double repair_floor_minutes = 1e-9;
    /// Gap floor of 1 second: the traces have second resolution and
    /// simultaneous failures yield exact zeros (same convention as the
    /// batch interarrival fits).
    double gap_floor_seconds = 1.0;
  };

  LiveAnalytics() : LiveAnalytics(Options{}) {}
  explicit LiveAnalytics(Options options);

  /// Folds one event into the repair and gap cells.
  void observe(const trace::FailureRecord& r);

  /// Windowed report for one system. `window` <= 0 falls back to
  /// 24 hours. Systems never seen yield an all-empty report (callers map
  /// that to 404).
  WindowReport report(int system_id, Seconds window) const;

  /// Evicts every bucket entirely before `horizon` from all cells — the
  /// analytics side of dataset retention, so windows and the sealed
  /// dataset agree on what history exists. Evicted observations are
  /// counted (compacted_observations()) and their bucket indices become
  /// a floor: late arrivals below it are dropped, never resurrected
  /// (see dist::SlidingSuffStats::evict_before).
  void compact_before(Seconds horizon);

  /// Observations de-windowed by compact_before across all cells.
  std::uint64_t compacted_observations() const noexcept {
    return compacted_;
  }

  /// Distinct systems observed, ascending.
  std::vector<int> system_ids() const;

  /// Latest event timestamp seen (the report clock); 0 before any event.
  Seconds latest_at() const noexcept { return latest_at_; }

  std::uint64_t events_observed() const noexcept { return events_; }

 private:
  struct Cell {
    dist::SlidingSuffStats repair_minutes;
    dist::SlidingSuffStats node_gaps;
  };
  struct SystemState {
    std::uint64_t events = 0;
    Seconds last_start = 0;
    bool has_last = false;
    dist::SlidingSuffStats system_gaps;
  };

  Cell& cell(int system_id, int node_id, trace::RootCause cause);

  Options options_;
  dist::SlidingSuffStats::Options repair_opts_;
  dist::SlidingSuffStats::Options gap_opts_;
  /// (system, node, cause) -> repair/gap accumulators.
  std::map<std::tuple<int, int, trace::RootCause>, Cell> cells_;
  /// (system, node) -> last failure start, for gap extraction.
  std::map<std::pair<int, int>, Seconds> last_node_start_;
  std::map<int, SystemState> systems_;
  Seconds latest_at_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t compacted_ = 0;
};

/// Renders a WindowReport as the /report JSON document.
std::string to_json(const WindowReport& report);

}  // namespace hpcfail::serve
