#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "trace/adapters/adapter.hpp"

namespace hpcfail::serve {

namespace {

constexpr int kPollMillis = 100;
constexpr std::size_t kChunkBytes = 64 * 1024;
constexpr std::size_t kObserveBatch = 256;
constexpr std::size_t kMaxIngestThreads = 64;

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("cannot make socket non-blocking");
  }
}

int bound_port_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname failed");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

/// Binds a listening TCP socket; returns the fd (caller owns).
int listen_on(const in_addr& host, int port, const char* label) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(std::string("cannot create ") + label + " socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = host;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(std::string("cannot bind ") + label + " socket to port " +
                std::to_string(port));
  }
  if (::listen(fd, 64) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno(std::string("cannot listen on ") + label + " socket");
  }
  set_nonblocking(fd);
  return fd;
}

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// One query parameter ("system=20") from a raw target string.
std::string query_param(const std::string& target, const std::string& key) {
  const std::size_t q = target.find('?');
  if (q == std::string::npos) return {};
  std::size_t pos = q + 1;
  while (pos < target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return {};
}

/// Validates user-supplied options before any member construction, and
/// mirrors the ingest shard count into the LiveDataset partition count.
ServerOptions validated(ServerOptions options) {
  const auto valid_port = [](int p) { return p >= 0 && p <= 65535; };
  if (!valid_port(options.ingest_port) || !valid_port(options.http_port)) {
    throw ValidationError("port must be in [0, 65535]");
  }
  if (options.window_seconds <= 0) {
    throw ValidationError("window must be positive");
  }
  if (options.bucket_seconds <= 0) {
    throw ValidationError("bucket seconds must be positive");
  }
  if (options.max_buckets == 0) {
    throw ValidationError("max buckets must be positive");
  }
  if (options.ingest_threads == 0 ||
      options.ingest_threads > kMaxIngestThreads) {
    throw ValidationError("ingest threads must be in [1, 64]");
  }
  if (options.http_request_deadline_ms <= 0) {
    throw ValidationError("http request deadline must be positive");
  }
  in_addr probe{};
  if (::inet_pton(AF_INET, options.host.c_str(), &probe) != 1) {
    throw ValidationError("invalid host address '" + options.host + "'");
  }
  options.epoch.shards = options.ingest_threads;
  return options;
}

LiveAnalytics::Options analytics_options(const ServerOptions& options) {
  LiveAnalytics::Options aopts;
  aopts.bucket_seconds = options.bucket_seconds;
  aopts.max_buckets = options.max_buckets;
  return aopts;
}

timeval to_timeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

}  // namespace

std::size_t send_fully(int fd, std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // signal load must not truncate
    break;  // peer gone (EPIPE/ECONNRESET) or SO_SNDTIMEO expired (EAGAIN)
  }
  return sent;
}

struct Server::Connection {
  /// `adapter` selects the wire format the connection's LineSource
  /// parses (null = native CSV rows); see ServerOptions::ingest_format.
  explicit Connection(const trace::Adapter* adapter) : source(adapter) {}
  int fd = -1;
  trace::LineSource source;
  std::uint64_t rejected_seen = 0;  ///< counter watermark already reported
};

/// One ingest shard: the connections owned by one ingest thread, the
/// hand-off queue the acceptor (shard 0's thread) fills, and the
/// shard's ingest accounting for /stats.
struct Server::IngestShard {
  std::size_t index = 0;
  int notify_fds[2] = {-1, -1};  ///< wakes the shard when pending_ fills
  std::mutex pending_mutex;
  std::vector<int> pending;  ///< accepted fds not yet adopted
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> connections{0};
};

Server::Server(ServerOptions options)
    : options_(validated(std::move(options))),
      adapter_(options_.ingest_format.empty()
                   ? nullptr
                   : &trace::adapter_for(options_.ingest_format)),
      live_(options_.epoch),
      analytics_(analytics_options(options_)) {}

Server::Server(ServerOptions options, trace::FailureDataset seed)
    : options_(validated(std::move(options))),
      adapter_(options_.ingest_format.empty()
                   ? nullptr
                   : &trace::adapter_for(options_.ingest_format)),
      live_(std::move(seed), options_.epoch),
      analytics_(analytics_options(options_)) {
  // Replay the seed into the analytics cells; snapshot records are
  // start-sorted, so gap extraction sees them chronologically.
  const std::shared_ptr<const trace::FailureDataset> snap = live_.snapshot();
  for (const trace::FailureRecord& r : snap->records()) {
    analytics_.observe(r);
  }
}

Server::~Server() {
  stop();
  wait();
  close_if_open(stop_pipe_[0]);
  close_if_open(stop_pipe_[1]);
  close_if_open(ingest_fd_);
  close_if_open(http_fd_);
  for (const auto& shard : shards_) {
    close_if_open(shard->notify_fds[0]);
    close_if_open(shard->notify_fds[1]);
  }
}

void Server::start() {
  HPCFAIL_EXPECTS(!running_.load(std::memory_order_acquire),
                  "server already started");
  if (::pipe(stop_pipe_) < 0) throw_errno("cannot create stop pipe");
  set_nonblocking(stop_pipe_[0]);
  set_nonblocking(stop_pipe_[1]);

  in_addr host{};
  ::inet_pton(AF_INET, options_.host.c_str(), &host);  // validated in ctor
  ingest_fd_ = listen_on(host, options_.ingest_port, "ingest");
  bound_ingest_port_ = bound_port_of(ingest_fd_);
  http_fd_ = listen_on(host, options_.http_port, "http");
  bound_http_port_ = bound_port_of(http_fd_);

  shards_.clear();
  for (std::size_t s = 0; s < options_.ingest_threads; ++s) {
    auto shard = std::make_unique<IngestShard>();
    shard->index = s;
    if (::pipe(shard->notify_fds) < 0) {
      throw_errno("cannot create shard notify pipe");
    }
    set_nonblocking(shard->notify_fds[0]);
    set_nonblocking(shard->notify_fds[1]);
    shards_.push_back(std::move(shard));
  }

  if (obs::enabled()) {
    // Register the serve metrics eagerly so /metrics shows the full
    // schema (zeros included) from the first scrape.
    obs::Registry& reg = obs::registry();
    reg.counter("serve.events_ingested");
    reg.counter("serve.rejected_events");
    reg.counter("serve.bytes_ingested");
    reg.counter("serve.connections");
    reg.counter("serve.http_requests");
    reg.counter("serve.http_request_timeouts");
    reg.counter("serve.http_truncated_responses");
    reg.counter("ingest.compacted_events");
    reg.gauge("serve.events_per_sec");
    reg.gauge("serve.ingest_threads")
        .set(static_cast<double>(options_.ingest_threads));
    reg.gauge("serve.index_epoch");
    reg.gauge("serve.epoch_lag_records");
    reg.gauge("serve.window_staleness_seconds");
  }

  rate_last_time_ = std::chrono::steady_clock::now();
  last_event_ns_.store(rate_last_time_.time_since_epoch().count(),
                       std::memory_order_release);
  running_.store(true, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  live_ingest_threads_.store(shards_.size(), std::memory_order_release);
  ingest_threads_.clear();
  for (const auto& shard : shards_) {
    IngestShard* s = shard.get();
    ingest_threads_.emplace_back([this, s] { ingest_loop(*s); });
  }
  http_thread_ = std::thread([this] { http_loop(); });
}

void Server::stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    // Async-signal-safe; short writes/EAGAIN are fine (any byte wakes
    // every loop, and they also poll stop_requested_ on a timeout).
    [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  for (std::thread& t : ingest_threads_) {
    if (t.joinable()) t.join();
  }
  if (http_thread_.joinable()) http_thread_.join();
  running_.store(false, std::memory_order_release);
}

void Server::drain_source(IngestShard& shard, trace::Source& source) {
  // live_ appends run lock-free for readers (the seal publishes behind
  // its own pointer swap), so only the analytics cells need the mutex —
  // taken per small batch, never across a seal.
  trace::FailureRecord r;
  std::vector<trace::FailureRecord> batch;
  batch.reserve(kObserveBatch);
  std::uint64_t accepted = 0;
  const auto flush = [&] {
    if (batch.empty()) return;
    std::lock_guard<std::mutex> lock(analytics_mutex_);
    for (const trace::FailureRecord& rec : batch) analytics_.observe(rec);
    batch.clear();
  };
  while (source.next(r) == trace::SourceStatus::event) {
    live_.append(shard.index, r);
    batch.push_back(r);
    ++accepted;
    if (batch.size() >= kObserveBatch) flush();
  }
  flush();
  if (accepted > 0) {
    shard.accepted.fetch_add(accepted, std::memory_order_acq_rel);
    events_ingested_.fetch_add(accepted, std::memory_order_acq_rel);
    last_event_ns_.store(
        std::chrono::steady_clock::now().time_since_epoch().count(),
        std::memory_order_release);
    if (obs::enabled()) {
      obs::registry().counter("serve.events_ingested").add(accepted);
    }
  }
}

void Server::ingest_chunk(IngestShard& shard, Connection& conn,
                          std::string_view bytes) {
  conn.source.feed(bytes);
  bytes_ingested_.fetch_add(bytes.size(), std::memory_order_acq_rel);
  if (obs::enabled()) {
    obs::registry().counter("serve.bytes_ingested").add(bytes.size());
  }
  drain_source(shard, conn.source);
  const std::uint64_t rejected = conn.source.counters().rejected;
  if (rejected > conn.rejected_seen) {
    const std::uint64_t delta = rejected - conn.rejected_seen;
    conn.rejected_seen = rejected;
    shard.rejected.fetch_add(delta, std::memory_order_acq_rel);
    events_rejected_.fetch_add(delta, std::memory_order_acq_rel);
    if (obs::enabled()) {
      obs::registry().counter("serve.rejected_events").add(delta);
    }
  }
}

void Server::update_gauges() {
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now - rate_last_time_).count();
  if (dt < 1.0) return;
  const std::uint64_t total =
      events_ingested_.load(std::memory_order_acquire);
  const double rate = static_cast<double>(total - rate_last_events_) / dt;
  rate_last_events_ = total;
  rate_last_time_ = now;
  if (obs::enabled()) {
    const auto last_event = std::chrono::steady_clock::time_point(
        std::chrono::steady_clock::duration(
            last_event_ns_.load(std::memory_order_acquire)));
    obs::Registry& reg = obs::registry();
    reg.gauge("serve.events_per_sec").set(rate);
    reg.gauge("serve.index_epoch").set(static_cast<double>(live_.epoch()));
    reg.gauge("serve.epoch_lag_records")
        .set(static_cast<double>(live_.tail_size()));
    reg.gauge("serve.window_staleness_seconds")
        .set(std::chrono::duration<double>(now - last_event).count());
  }
}

void Server::compact_analytics_to_horizon() {
  // Trims the sliding analytics windows to the dataset's retention
  // horizon so the two surfaces agree on what history exists. Runs on
  // shard 0's thread only.
  if (live_.compacted_events() == 0) return;
  const Seconds horizon = live_.retention_horizon();
  if (horizon == analytics_horizon_) return;
  std::lock_guard<std::mutex> lock(analytics_mutex_);
  analytics_.compact_before(horizon);
  analytics_horizon_ = horizon;
}

void Server::accept_ingest_connections() {
  while (true) {
    const int client = ::accept(ingest_fd_, nullptr, nullptr);
    if (client < 0) break;  // EAGAIN: accepted everything pending
    set_nonblocking(client);
    IngestShard& target = *shards_[next_shard_rr_ % shards_.size()];
    ++next_shard_rr_;
    {
      std::lock_guard<std::mutex> lock(target.pending_mutex);
      target.pending.push_back(client);
    }
    const char byte = 1;
    [[maybe_unused]] const auto n =
        ::write(target.notify_fds[1], &byte, 1);
    target.connections.fetch_add(1, std::memory_order_acq_rel);
    connections_.fetch_add(1, std::memory_order_acq_rel);
    if (obs::enabled()) {
      obs::registry().counter("serve.connections").add(1);
    }
  }
}

void Server::ingest_loop(IngestShard& shard) {
  std::vector<std::unique_ptr<Connection>> conns;
  std::unique_ptr<trace::TailSource> tail;
  std::uint64_t tail_rejected_seen = 0;
  const bool acceptor = shard.index == 0;
  if (acceptor && !options_.tail_path.empty()) {
    tail = std::make_unique<trace::TailSource>(options_.tail_path,
                                               /*start_offset=*/0, adapter_);
  }

  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    fds.push_back({shard.notify_fds[0], POLLIN, 0});
    if (acceptor) fds.push_back({ingest_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (const auto& conn : conns) fds.push_back({conn->fd, POLLIN, 0});

    const int ready = ::poll(fds.data(), fds.size(), kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (stop_requested_.load(std::memory_order_acquire)) break;

    // One chunk per connection per round; fds[i] pairs with
    // conns[i - conn_base] because conns is not mutated until below.
    char buffer[kChunkBytes];
    const std::size_t polled = conns.size();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& conn = *conns[i];
      const pollfd& pfd = fds[conn_base + i];
      if ((pfd.revents & (POLLIN | POLLHUP)) == 0) continue;
      const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        ingest_chunk(shard, conn,
                     std::string_view(buffer, static_cast<std::size_t>(n)));
      } else if (n == 0 || (n < 0 && errno != EAGAIN && errno != EINTR)) {
        conn.source.finish();
        ingest_chunk(shard, conn, std::string_view());
        ::close(conn.fd);
        conn.fd = -1;
      }
    }
    std::erase_if(conns, [](const std::unique_ptr<Connection>& c) {
      return c->fd < 0;
    });

    // Adopt connections the acceptor handed to this shard, then (shard
    // 0) accept new ones — strictly after the recv pass so the fds/
    // conns pairing above stays valid.
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(shard.notify_fds[0], drain, sizeof(drain)) > 0) {
      }
    }
    adopt_pending(shard, conns);
    if (acceptor) {
      if ((fds[2].revents & POLLIN) != 0) accept_ingest_connections();
      if (tail) {
        drain_source(shard, *tail);
        const std::uint64_t rejected = tail->counters().rejected;
        if (rejected > tail_rejected_seen) {
          const std::uint64_t delta = rejected - tail_rejected_seen;
          tail_rejected_seen = rejected;
          shard.rejected.fetch_add(delta, std::memory_order_acq_rel);
          events_rejected_.fetch_add(delta, std::memory_order_acq_rel);
          if (obs::enabled()) {
            obs::registry().counter("serve.rejected_events").add(delta);
          }
        }
      }
      update_gauges();
      compact_analytics_to_horizon();
    }

    if (options_.max_events > 0 &&
        events_ingested_.load(std::memory_order_acquire) >=
            options_.max_events) {
      stop();
      break;
    }
  }

  for (const auto& conn : conns) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns.clear();
  // The last ingest thread out runs the final seal so post-run
  // snapshots (CLI metrics dump, tests) see every accepted event in
  // the indexed dataset, across all shards.
  if (live_ingest_threads_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    live_.seal();
    compact_analytics_to_horizon();
    if (obs::enabled()) {
      obs::registry().gauge("serve.index_epoch")
          .set(static_cast<double>(live_.epoch()));
      obs::registry().gauge("serve.epoch_lag_records")
          .set(static_cast<double>(live_.tail_size()));
    }
  }
}

void Server::adopt_pending(IngestShard& shard,
                           std::vector<std::unique_ptr<Connection>>& conns) {
  std::vector<int> adopted;
  {
    std::lock_guard<std::mutex> lock(shard.pending_mutex);
    adopted.swap(shard.pending);
  }
  for (const int fd : adopted) {
    auto conn = std::make_unique<Connection>(adapter_);
    conn->fd = fd;
    conns.push_back(std::move(conn));
  }
}

std::string Server::stats_json() const {
  std::string out = "{";
  out += "\"events_ingested\":" + std::to_string(events_ingested());
  out += ",\"events_rejected\":" + std::to_string(events_rejected());
  out += ",\"bytes_ingested\":" +
         std::to_string(bytes_ingested_.load(std::memory_order_acquire));
  out += ",\"connections\":" +
         std::to_string(connections_.load(std::memory_order_acquire));
  out += ",\"http_requests\":" + std::to_string(http_requests());
  out += ",\"http_request_timeouts\":" +
         std::to_string(http_request_timeouts());
  out += ",\"http_truncated_responses\":" +
         std::to_string(http_truncated_responses());
  out += ",\"epoch\":" + std::to_string(live_.epoch());
  out += ",\"sealed_records\":" + std::to_string(live_.sealed_size());
  out += ",\"tail_records\":" + std::to_string(live_.tail_size());
  out += ",\"ingest_threads\":" + std::to_string(options_.ingest_threads);
  out += ",\"ingest_format\":\"" +
         (adapter_ ? std::string(adapter_->name()) : std::string("native")) +
         '"';
  out += ",\"compacted_events\":" + std::to_string(live_.compacted_events());
  out += ",\"retention_horizon\":" +
         std::to_string(live_.compacted_events() > 0
                            ? live_.retention_horizon()
                            : 0);
  out += ",\"shards\":[";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const IngestShard& shard = *shards_[s];
    if (s != 0) out += ',';
    out += "{\"accepted\":" +
           std::to_string(shard.accepted.load(std::memory_order_acquire));
    out += ",\"rejected\":" +
           std::to_string(shard.rejected.load(std::memory_order_acquire));
    out += ",\"connections\":" +
           std::to_string(shard.connections.load(std::memory_order_acquire));
    out += "}";
  }
  out += "],\"systems\":[";
  {
    std::lock_guard<std::mutex> lock(analytics_mutex_);
    const std::vector<int> ids = analytics_.system_ids();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(ids[i]);
    }
  }
  out += "]}";
  return out;
}

std::string Server::handle_request(const std::string& target, int& status) {
  status = 200;
  const std::string path = target.substr(0, target.find('?'));
  if (path == "/healthz") return "ok\n";
  if (path == "/stats") return stats_json();
  if (path == "/metrics") {
    return obs::to_prometheus(obs::registry().snapshot());
  }
  if (path == "/shutdown") {
    stop();
    return "{\"shutting_down\":true}";
  }
  if (path == "/report") {
    try {
      const std::string system_text = query_param(target, "system");
      if (system_text.empty()) {
        status = 400;
        return "{\"error\":\"missing required parameter 'system'\"}";
      }
      const int system_id = static_cast<int>(parse_i64(system_text));
      Seconds window = options_.window_seconds;
      const std::string hours = query_param(target, "window_hours");
      if (!hours.empty()) {
        window = static_cast<Seconds>(parse_double(hours) *
                                      static_cast<double>(kSecondsPerHour));
      }
      const std::string seconds = query_param(target, "window_seconds");
      if (!seconds.empty()) window = parse_i64(seconds);
      if (window <= 0) {
        status = 400;
        return "{\"error\":\"window must be positive\"}";
      }
      std::lock_guard<std::mutex> lock(analytics_mutex_);
      const std::vector<int> ids = analytics_.system_ids();
      if (std::find(ids.begin(), ids.end(), system_id) == ids.end()) {
        status = 404;
        return "{\"error\":\"unknown system " + std::to_string(system_id) +
               "\"}";
      }
      WindowReport report = analytics_.report(system_id, window);
      // Compacted-ledger section: events retention dropped past the
      // horizon still show up as per-cause pooled repair SuffStats, so
      // /report accounts for the full ingested history (satellite of
      // the retention contract; compaction_cells() is safe while
      // ingest runs).
      std::map<trace::RootCause, dist::SuffStats> compacted;
      for (const trace::CompactionCell& cell : live_.compaction_cells()) {
        if (cell.system_id != system_id) continue;
        report.compacted_events += cell.repair_minutes.n;
        auto [it, fresh] = compacted.try_emplace(cell.cause);
        if (fresh) {
          it->second = cell.repair_minutes;
        } else {
          it->second.merge(cell.repair_minutes);
        }
      }
      report.compacted_by_cause.reserve(compacted.size());
      for (const auto& [cause, suff] : compacted) {
        report.compacted_by_cause.push_back(CauseWindow{cause, suff});
      }
      return to_json(report);
    } catch (const ParseError& e) {
      status = 400;
      return "{\"error\":\"parse error: " + std::string(e.what()) + "\"}";
    }
  }
  status = 404;
  return "{\"error\":\"not found\"}";
}

void Server::http_loop() {
  const auto request_budget =
      std::chrono::milliseconds(options_.http_request_deadline_ms);
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    fds.push_back({http_fd_, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (ready <= 0 || (fds[1].revents & POLLIN) == 0) continue;

    while (true) {
      const int client = ::accept(http_fd_, nullptr, nullptr);
      if (client < 0) break;
      // Small blocking reads under an *overall* per-request deadline:
      // SO_RCVTIMEO alone bounds each recv, not the request, so a
      // client trickling one byte per timeout would otherwise hold the
      // sole HTTP thread forever (slow-loris) and starve /healthz.
      const auto deadline = std::chrono::steady_clock::now() + request_budget;
      std::string request;
      char buffer[4096];
      bool timed_out = false;
      while (request.find("\r\n") == std::string::npos &&
             request.size() < 16 * 1024) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) {
          timed_out = true;
          break;
        }
        const timeval tv = to_timeval(remaining);
        ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        const ssize_t n = ::recv(client, buffer, sizeof(buffer), 0);
        if (n > 0) {
          request.append(buffer, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 &&
            (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
          // Interrupted, or the per-recv slice of the deadline expired:
          // loop back so the overall deadline check decides.
          continue;
        }
        break;  // closed or a real error
      }

      std::string body;
      std::string content_type = "application/json";
      int status = 200;
      const std::size_t line_end = request.find("\r\n");
      if (line_end == std::string::npos) {
        if (timed_out) {
          status = 408;
          body = "{\"error\":\"request deadline exceeded\"}";
          http_timeouts_.fetch_add(1, std::memory_order_acq_rel);
          if (obs::enabled()) {
            obs::registry().counter("serve.http_request_timeouts").add(1);
          }
        } else {
          status = 400;
          body = "{\"error\":\"malformed request\"}";
        }
      } else {
        const std::vector<std::string> parts =
            split(request.substr(0, line_end), ' ');
        if (parts.size() < 2 || parts[0] != "GET") {
          status = 405;
          body = "{\"error\":\"only GET is supported\"}";
        } else {
          body = handle_request(parts[1], status);
          const std::string path = parts[1].substr(0, parts[1].find('?'));
          if (path == "/metrics" || path == "/healthz") {
            content_type = "text/plain; charset=utf-8";
          }
        }
      }

      const char* reason = status == 200   ? "OK"
                           : status == 400 ? "Bad Request"
                           : status == 404 ? "Not Found"
                           : status == 405 ? "Method Not Allowed"
                           : status == 408 ? "Request Timeout"
                                           : "Error";
      std::string response = "HTTP/1.0 " + std::to_string(status) + " " +
                             reason + "\r\nContent-Type: " + content_type +
                             "\r\nContent-Length: " +
                             std::to_string(body.size()) +
                             "\r\nConnection: close\r\n\r\n" + body;
      // Bound the write side too, then retry interrupted sends so a
      // burst of signals cannot silently truncate /metrics or /report.
      const timeval send_tv = to_timeval(request_budget);
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &send_tv,
                   sizeof(send_tv));
      const std::size_t sent = send_fully(client, response);
      if (sent < response.size()) {
        http_truncated_.fetch_add(1, std::memory_order_acq_rel);
        if (obs::enabled()) {
          obs::registry().counter("serve.http_truncated_responses").add(1);
        }
      }
      ::close(client);
      http_requests_.fetch_add(1, std::memory_order_acq_rel);
      if (obs::enabled()) {
        obs::registry().counter("serve.http_requests").add(1);
      }
      if (stop_requested_.load(std::memory_order_acquire)) break;
    }
  }
}

}  // namespace hpcfail::serve
