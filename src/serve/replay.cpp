#include "serve/replay.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "serve/server.hpp"
#include "trace/adapters/adapter.hpp"
#include "trace/types.hpp"

namespace hpcfail::serve {

namespace {

constexpr std::size_t kFlushBytes = 64 * 1024;

ReplayOptions validated(ReplayOptions options) {
  if (options.port <= 0 || options.port > 65535) {
    throw ValidationError("replay port must be in [1, 65535]");
  }
  if (options.connections == 0) {
    throw ValidationError("replay connections must be positive");
  }
  if (options.speedup < 0.0) {
    throw ValidationError("replay speedup must be non-negative");
  }
  in_addr probe{};
  if (::inet_pton(AF_INET, options.host.c_str(), &probe) != 1) {
    throw ValidationError("invalid host address '" + options.host + "'");
  }
  return options;
}

int connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw IoError(std::string("cannot create replay socket: ") +
                  std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    throw IoError("cannot connect to " + host + ":" + std::to_string(port) +
                  ": " + std::strerror(saved));
  }
  // Pacing wants each flushed batch on the wire now, not Nagle-delayed.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void append_line(std::string& out, const trace::FailureRecord& r,
                 const trace::Adapter* adapter) {
  if (adapter != nullptr) {
    out += adapter->format_line(r);
    out += '\n';
    return;
  }
  out += std::to_string(r.system_id);
  out += ',';
  out += std::to_string(r.node_id);
  out += ',';
  out += format_timestamp(r.start);
  out += ',';
  out += format_timestamp(r.end);
  out += ',';
  out += trace::to_string(r.workload);
  out += ',';
  out += trace::to_string(r.cause);
  out += ',';
  out += trace::to_string(r.detail);
  out += '\n';
}

}  // namespace

ReplayStats replay_dataset(const trace::FailureDataset& dataset,
                           const ReplayOptions& options_in) {
  const ReplayOptions options = validated(options_in);
  const trace::ColumnsView records = dataset.records();
  const std::uint64_t count =
      options.limit > 0
          ? std::min<std::uint64_t>(options.limit, records.size())
          : records.size();

  ReplayStats stats;
  if (count == 0) return stats;

  std::vector<int> fds;
  std::vector<std::string> buffers(options.connections);
  fds.reserve(options.connections);
  for (std::size_t c = 0; c < options.connections; ++c) {
    fds.push_back(connect_to(options.host, options.port));
  }
  const auto close_all = [&fds] {
    for (const int fd : fds) ::close(fd);
    fds.clear();
  };

  const auto flush = [&](std::size_t c) {
    std::string& buffer = buffers[c];
    if (buffer.empty()) return;
    const std::size_t sent = send_fully(fds[c], buffer);
    if (sent < buffer.size()) {
      const int saved = errno;
      close_all();
      throw IoError("replay connection " + std::to_string(c) +
                    " broke mid-send: " + std::strerror(saved));
    }
    stats.bytes_sent += buffer.size();
    buffer.clear();
  };

  const Seconds first_start = records[0].start;
  const auto wall_base = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < count; ++i) {
    const trace::FailureRecord r = records[i];
    if (options.speedup > 0.0) {
      const double offset =
          static_cast<double>(r.start - first_start) / options.speedup;
      const auto due = wall_base + std::chrono::duration_cast<
                                       std::chrono::steady_clock::duration>(
                                       std::chrono::duration<double>(offset));
      if (due > std::chrono::steady_clock::now()) {
        // Put everything due so far on the wire before sleeping.
        for (std::size_t c = 0; c < buffers.size(); ++c) flush(c);
        std::this_thread::sleep_until(due);
      }
    }
    // Stable (system, node) hash: one node's events always share a
    // connection, preserving per-node order end to end.
    const std::size_t conn =
        (static_cast<std::size_t>(r.system_id) * 8191u +
         static_cast<std::size_t>(r.node_id)) %
        options.connections;
    append_line(buffers[conn], r, options.adapter);
    ++stats.events_sent;
    if (buffers[conn].size() >= kFlushBytes) flush(conn);
  }
  for (std::size_t c = 0; c < buffers.size(); ++c) flush(c);
  close_all();

  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_base)
                           .count();
  stats.events_per_sec =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.events_sent) / stats.wall_seconds
          : 0.0;
  stats.trace_span = records[count - 1].start - first_start;
  return stats;
}

}  // namespace hpcfail::serve
