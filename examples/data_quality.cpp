// Data-quality pipeline: what ingesting a real operator-entered trace
// looks like. We damage a clean trace the way field data is damaged
// (lost records, misdiagnosed causes, stuck tickets, typo'd node ids),
// run the validator, and show how the analysis results degrade before
// and recover after cleaning.
//
//   ./data_quality [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/repair.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"
#include "synth/corruption.hpp"
#include "synth/generator.hpp"
#include "trace/validate.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  const trace::FailureDataset clean = synth::generate_lanl_trace(seed);
  synth::CorruptionConfig damage;
  damage.seed = seed + 1;
  damage.drop_probability = 0.05;
  damage.relabel_unknown_probability = 0.10;
  damage.stretch_repair_probability = 0.01;
  damage.corrupt_node_probability = 0.005;
  const trace::FailureDataset dirty = synth::corrupt(clean, damage);
  std::cout << "clean trace: " << clean.size() << " records; damaged: "
            << dirty.size() << " records survive the drop step\n\n";

  const trace::ValidationReport report =
      trace::validate(dirty, trace::SystemCatalog::lanl());
  report::TextTable issues({"issue kind", "count"});
  for (const auto kind : {trace::ValidationIssueKind::unknown_system,
                          trace::ValidationIssueKind::node_out_of_range,
                          trace::ValidationIssueKind::outside_production,
                          trace::ValidationIssueKind::overlapping_repair,
                          trace::ValidationIssueKind::implausible_duration,
                          trace::ValidationIssueKind::workload_mismatch}) {
    issues.add_row({trace::to_string(kind),
                    std::to_string(report.count(kind))});
  }
  std::cout << "validation of the damaged trace ("
            << report.issues.size() << " issues):\n";
  issues.render(std::cout);

  const trace::FailureDataset cleaned =
      trace::drop_flagged(dirty, report);
  std::cout << "\nafter dropping flagged records: " << cleaned.size()
            << " records\n\n";

  // Show the repair-time statistics before/after: the stretched tickets
  // inflate the mean dramatically, and cleaning restores it.
  const auto& catalog = trace::SystemCatalog::lanl();
  const auto stat = [&catalog](const trace::FailureDataset& ds) {
    return analysis::repair_analysis(ds, catalog).all;
  };
  const auto original = stat(clean);
  const auto damaged = stat(dirty);
  const auto recovered = stat(cleaned);
  report::TextTable effect(
      {"trace", "mean repair (min)", "median (min)", "C^2"});
  effect.add_row("clean", {original.mean, original.median, original.cv2},
                 4);
  effect.add_row("damaged", {damaged.mean, damaged.median, damaged.cv2},
                 4);
  effect.add_row("cleaned", {recovered.mean, recovered.median,
                             recovered.cv2},
                 4);
  effect.render(std::cout);
  std::cout << "\nnote: cleaning cannot restore silently dropped records "
               "or relabeled\ncauses -- exactly the data-quality limits "
               "Section 2.3 of the paper\ndiscusses for operator-entered "
               "failure data.\n";
  return 0;
}
