// Reliability-aware node selection (Section 5.1's motivation).
//
// Ranks the nodes of one system by observed failure rate, shows the
// graphics/front-end hot spots, then quantifies the payoff with the
// cluster simulator: random placement vs placing jobs on the most
// reliable available nodes.
//
//   ./reliability_ranking [system_id]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/outliers.hpp"
#include "analysis/rates.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "sim/cluster.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const int system_id = argc > 1 ? std::atoi(argv[1]) : 20;

  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);
  const auto report = analysis::node_distribution(
      dataset, trace::SystemCatalog::lanl(), system_id);

  // Top ten most failure-prone nodes.
  auto ranked = report.per_node;
  std::sort(ranked.begin(), ranked.end(),
            [](const analysis::NodeCount& a, const analysis::NodeCount& b) {
              return a.failures > b.failures;
            });
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size());
       ++i) {
    bars.emplace_back("node " + std::to_string(ranked[i].node_id) + " (" +
                          trace::to_string(ranked[i].workload) + ")",
                      static_cast<double>(ranked[i].failures));
  }
  report::bar_chart(std::cout,
                    "most failure-prone nodes of system " +
                        std::to_string(system_id),
                    bars);
  std::cout << "\ngraphics nodes: " << report.graphics_node_fraction * 100.0
            << "% of nodes, " << report.graphics_failure_fraction * 100.0
            << "% of failures\n\n";

  // Which of those are *statistically* hot, not just unlucky? Poisson
  // test against each node's exposure, Bonferroni-corrected.
  const auto outliers = analysis::node_outlier_analysis(
      dataset, trace::SystemCatalog::lanl(), system_id);
  std::cout << outliers.significant_count
            << " node(s) fail significantly more than their exposure "
               "predicts (alpha "
            << outliers.alpha << ", Bonferroni):\n";
  for (const auto& n : outliers.nodes) {
    if (!n.significant) continue;
    std::cout << "  node " << n.node_id << " ("
              << trace::to_string(n.workload) << "): " << n.failures
              << " failures vs " << n.expected
              << " expected, p = " << n.p_value << "\n";
  }
  std::cout << "\n";

  // Policy payoff on a synthetic 64-node cluster with the same kind of
  // heterogeneity, at half load so the scheduler has slack.
  sim::ClusterConfig cfg;
  cfg.nodes = sim::heterogeneous_nodes(64, 20.0 * 86400.0, 0.3, 0.08, 5.0,
                                       99);
  cfg.job_width = 8;
  cfg.job_work_seconds = 24.0 * 3600.0;
  cfg.job_count = 200;
  cfg.max_concurrent_jobs = 4;

  report::TextTable table({"placement policy", "makespan (d)",
                           "wasted work (%)", "job interruptions"});
  for (const auto& [name, policy] :
       {std::pair{"random", sim::PlacementPolicy::random},
        std::pair{"reliability-ranked",
                  sim::PlacementPolicy::reliability_ranked}}) {
    Rng rng(5);
    cfg.policy = policy;
    const sim::ClusterStats stats = sim::simulate_cluster(cfg, rng);
    table.add_row(name, {stats.makespan / 86400.0,
                         stats.waste_fraction() * 100.0,
                         static_cast<double>(stats.interruptions)});
  }
  table.render(std::cout);
  return 0;
}
