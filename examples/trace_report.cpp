// Full paper-style report over any failure trace in the release CSV
// schema -- the tool you would point at the real LANL data.
//
//   ./trace_report <trace.csv>        analyze an existing trace
//   ./trace_report --synth [out.csv]  generate the synthetic trace first
//                                     (and optionally save it)
#include <iostream>
#include <string>

#include "analysis/availability.hpp"
#include "analysis/periodicity.hpp"
#include "common/error.hpp"
#include "analysis/rates.hpp"
#include "analysis/repair.hpp"
#include "analysis/root_cause.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  trace::FailureDataset dataset;
  try {
    if (argc >= 2 && std::string(argv[1]) != "--synth") {
      dataset = trace::read_csv_file(argv[1]);
    } else {
      dataset = synth::generate_lanl_trace(42);
      if (argc >= 3) {
        trace::write_csv_file(argv[2], dataset);
        std::cout << "(saved synthetic trace to " << argv[2] << ")\n";
      }
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();

  std::cout << "=== trace overview ===\n"
            << dataset.size() << " failures across "
            << dataset.system_ids().size() << " systems, "
            << format_timestamp(dataset.first_start()) << " .. "
            << format_timestamp(dataset.last_end()) << "\n\n";

  // Root causes (Fig 1).
  const auto causes = analysis::root_cause_breakdown(dataset, catalog);
  report::TextTable cause_table({"group", "HW%", "SW%", "Net%", "Env%",
                                 "Human%", "Unk%", "failures"});
  const auto add_breakdown = [&](const analysis::CauseBreakdown& b) {
    cause_table.add_row(
        b.label,
        {b.count_percent[0], b.count_percent[1], b.count_percent[2],
         b.count_percent[3], b.count_percent[4], b.count_percent[5],
         static_cast<double>(b.failures)},
        3);
  };
  for (const auto& b : causes.by_type) add_breakdown(b);
  add_breakdown(causes.all);
  std::cout << "=== root causes by hardware type (Fig 1a) ===\n";
  cause_table.render(std::cout);

  // Failure rates (Fig 2).
  std::cout << "\n=== failures per year per system (Fig 2a) ===\n";
  std::vector<std::pair<std::string, double>> rate_bars;
  for (const auto& r : analysis::failure_rates(dataset, catalog)) {
    rate_bars.emplace_back("sys " + std::to_string(r.system_id) + " (" +
                               r.hw_type + std::string(")"),
                           r.failures_per_year);
  }
  report::bar_chart(std::cout, "", rate_bars);

  // Periodicity (Fig 5).
  const auto period = analysis::periodicity(dataset);
  std::cout << "\n=== periodicity (Fig 5) ===\n"
            << "day/night ratio: " << period.day_night_ratio
            << ", weekday/weekend ratio: " << period.weekday_weekend_ratio
            << "\n";

  // Repair times (Table 2 + Fig 7).
  const auto repair = analysis::repair_analysis(dataset, catalog);
  std::cout << "\n=== repair times by root cause, minutes (Table 2) ===\n";
  report::TextTable repair_table(
      {"cause", "mean", "median", "stddev", "C^2"});
  for (const auto& c : repair.by_cause) {
    repair_table.add_row(trace::to_string(c.cause),
                         {c.stats.mean, c.stats.median, c.stats.stddev,
                          c.stats.cv2},
                         3);
  }
  repair_table.add_row("all", {repair.all.mean, repair.all.median,
                               repair.all.stddev, repair.all.cv2},
                       3);
  repair_table.render(std::cout);
  std::cout << "\nbest repair-time model: "
            << repair.fits.front().model->describe() << "\n";

  // Availability (derived; see bench_ext_availability for the full view).
  const auto availability = analysis::availability_analysis(dataset,
                                                            catalog);
  for (const auto& a : availability) {
    if (a.system_id == 0) {
      std::cout << "\nsite-wide availability: "
                << a.availability * 100.0 << "% ("
                << a.downtime_hours << " node-hours of downtime)\n";
    }
  }
  return 0;
}
