// Quickstart: generate a synthetic LANL-like failure trace, look at its
// headline statistics, and fit the paper's four standard distributions to
// time-between-failures and repair times.
//
//   ./quickstart [seed]
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "analysis/interarrival.hpp"
#include "analysis/repair.hpp"
#include "report/table.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "Generating the 22-system LANL scenario (seed " << seed
            << ") ...\n";
  const trace::FailureDataset dataset = synth::generate_lanl_trace(seed);
  std::cout << "  " << dataset.size() << " failure records, "
            << format_timestamp(dataset.first_start()) << " .. "
            << format_timestamp(dataset.last_end()) << "\n\n";

  // Time between failures, system-wide view of the big NUMA cluster
  // (system 20), late in production -- the paper's Fig 6(d) setting.
  analysis::InterarrivalQuery query;
  query.system_id = 20;
  query.from = to_epoch(2000, 1, 1);
  const analysis::InterarrivalReport tbf =
      analysis::interarrival_analysis(dataset, query);

  std::cout << "Time between failures, system 20, 2000-2005 ("
            << tbf.gaps_seconds.size() << " intervals):\n";
  std::cout << "  mean " << tbf.summary.mean / 3600.0 << " h, median "
            << tbf.summary.median / 3600.0 << " h, C^2 " << tbf.summary.cv2
            << "\n";
  report::TextTable table({"model", "neg log-likelihood", "AIC", "KS"});
  for (const auto& fit : tbf.fits) {
    table.add_row(fit.model->describe(),
                  {fit.nll, fit.aic, fit.ks});
  }
  table.render(std::cout);
  std::cout << "  best model: " << tbf.best().model->describe() << "\n\n";

  // Repair times across the whole site -- the paper's Fig 7(a) setting.
  const analysis::RepairReport repair =
      analysis::repair_analysis(dataset, trace::SystemCatalog::lanl());
  std::cout << "Repair times, all systems (" << repair.all.n
            << " repairs):\n";
  std::cout << "  mean " << repair.all.mean << " min, median "
            << repair.all.median << " min, C^2 " << repair.all.cv2 << "\n";
  report::TextTable rtable({"model", "neg log-likelihood", "KS"});
  for (const auto& fit : repair.fits) {
    rtable.add_row(fit.model->describe(), {fit.nll, fit.ks});
  }
  rtable.render(std::cout);
  std::cout << "  best model: " << repair.fits.front().model->describe()
            << "\n";
  return 0;
}
