// Checkpoint advisor: what the paper's statistics mean for a practitioner.
//
// Fits the time-between-failure distribution of one system from the trace,
// then compares checkpoint intervals chosen three ways:
//   1. Young/Daly under the classical exponential (memoryless) assumption,
//   2. a simulation sweep against the *fitted* (Weibull, decreasing-hazard)
//      failure process,
//   3. the naive "checkpoint every hour" rule,
// reporting the wall-clock each policy actually yields on the fitted
// process.
//
//   ./checkpoint_advisor [system_id] [checkpoint_cost_seconds]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "analysis/interarrival.hpp"
#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "report/table.hpp"
#include "sim/checkpoint.hpp"
#include "synth/generator.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const int system_id = argc > 1 ? std::atoi(argv[1]) : 20;
  const double ckpt_cost = argc > 2 ? std::atof(argv[2]) : 600.0;

  const trace::FailureDataset dataset = synth::generate_lanl_trace(42);

  // System-wide failure process, late era (stable regime).
  analysis::InterarrivalQuery query;
  query.system_id = system_id;
  query.from = to_epoch(2000, 1, 1);
  analysis::InterarrivalReport tbf;
  try {
    tbf = analysis::interarrival_analysis(dataset, query);
  } catch (const Error&) {
    query.from.reset();  // short-lived system: use its whole life
    tbf = analysis::interarrival_analysis(dataset, query);
  }
  const double mtbf = tbf.summary.mean;
  std::cout << "System " << system_id << ": MTBF "
            << mtbf / 3600.0 << " h, fitted model "
            << tbf.best().model->describe() << " (C^2 "
            << tbf.summary.cv2 << ")\n\n";

  sim::CheckpointConfig cfg;
  cfg.work_seconds = 30.0 * 86400.0;  // a month-long simulation campaign
  cfg.checkpoint_cost = ckpt_cost;
  cfg.restart_cost = 300.0;

  const double daly = sim::daly_interval(mtbf, ckpt_cost);
  std::vector<double> candidates;
  for (double f = 0.25; f <= 4.01; f *= std::sqrt(2.0)) {
    candidates.push_back(daly * f);
  }
  Rng rng(7);
  const double swept = sim::best_interval_by_simulation(
      *tbf.best().model, nullptr, cfg, candidates, rng, 48);

  report::TextTable table(
      {"policy", "interval (h)", "wall-clock (d)", "lost work (d)",
       "failures"});
  const auto evaluate = [&](const std::string& name, double interval) {
    cfg.interval = interval;
    Rng eval_rng(99);
    const sim::CheckpointStats s = sim::simulate_checkpoint_mean(
        *tbf.best().model, nullptr, cfg, eval_rng, 64);
    table.add_row(name, {interval / 3600.0, s.wall_clock / 86400.0,
                         s.lost_work / 86400.0,
                         static_cast<double>(s.failures)});
  };
  evaluate("Young (exp. assumption)", sim::young_interval(mtbf, ckpt_cost));
  evaluate("Daly (exp. assumption)", daly);
  evaluate("simulated sweep (fitted model)", swept);
  evaluate("hourly checkpoints", 3600.0);
  table.render(std::cout);

  std::cout << "\nNote: with the fitted decreasing-hazard Weibull the "
               "simulation sweep can\nafford intervals the memoryless "
               "formulas would call too risky.\n";
  return 0;
}
