#!/usr/bin/env python3
"""Gates committed benchmark artifacts against regression floors.

Usage: check_bench_floor.py BENCH_PR6.json --pr pr6
           [--min-generation-records-per-sec N --generation-profile P]
           [--min-fitting-speedup-vs-seed X --fitting-row per_node|pooled]
       check_bench_floor.py BENCH_PR7.json --pr pr7
           [--min-campaign-faults-per-sec N]
       check_bench_floor.py BENCH_PR8.json --pr pr8
           [--min-ingest-events-per-sec N]
       check_bench_floor.py BENCH_PR9.json --pr pr9
           [--min-sharded-events-per-sec N]

`--pr` names the gate explicitly; an unknown key is a loud failure
(exit 1 listing the known keys), and the named gate must match the
JSON's "benchmark" field — a CI invocation pointed at the wrong
artifact can no longer pass vacuously. When --pr is omitted the gate
is inferred from the "benchmark" field: "pr6_columnar_pipeline"
(written by `bench_perf_dataset --pr6`), "pr7_campaign" (written by
`bench_perf_campaign`), "pr8_ingest" (written by `bench_perf_ingest`),
or "pr9_ingest" (written by `bench_perf_ingest --pr9`). The check
fails (exit 1) when a gated number falls below its floor. The sharded-ingest
gate is an absolute events/sec floor on the multi-shard cell, NOT a
speedup-over-1-shard ratio: CI runners may expose a single core (the
JSON records "cores"), where shard parallelism cannot materialize. The generation gate applies to the wall-clock
`records_per_sec` of the largest trace generated under the named
profile — the 10M-record sweep row, NOT the paper-scale profile gauge,
which is dominated by per-system planning cost. The campaign gate
applies to single-core injected-faults/sec, which is runner-count
independent. Floors are commanded from CI so they can be sized to the
runner class; keep them well below locally measured bests, since
single-shot CI runs see 1.5x scheduling noise. Stdlib only.
"""
import argparse
import json
import sys


def fail(message):
    print(f"bench floor violation: {message}", file=sys.stderr)
    sys.exit(1)


# --pr key -> expected "benchmark" field. Keys are an explicit
# allowlist: anything else fails loudly rather than matching nothing
# and "passing".
GATES = {
    "pr6": "pr6_columnar_pipeline",
    "pr7": "pr7_campaign",
    "pr8": "pr8_ingest",
    "pr9": "pr9_ingest",
}


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--pr",
                        help="gate to run: " + " | ".join(sorted(GATES)))
    parser.add_argument("--min-generation-records-per-sec", type=float)
    parser.add_argument("--generation-profile", default="stress")
    parser.add_argument("--min-fitting-speedup-vs-seed", type=float)
    parser.add_argument("--fitting-row", default="pooled",
                        choices=["per_node", "pooled"])
    parser.add_argument("--min-campaign-faults-per-sec", type=float)
    parser.add_argument("--min-ingest-events-per-sec", type=float)
    parser.add_argument("--min-sharded-events-per-sec", type=float)
    args = parser.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.path}: {e}")

    benchmark = doc.get("benchmark")
    if args.pr is not None:
        if args.pr not in GATES:
            fail(f"unknown --pr key {args.pr!r}; known keys: "
                 + ", ".join(sorted(GATES)))
        if benchmark != GATES[args.pr]:
            fail(f"--pr {args.pr} expects benchmark {GATES[args.pr]!r} "
                 f"but {args.path} holds {benchmark!r}")
    if benchmark == "pr6_columnar_pipeline":
        check_pr6(doc, args)
    elif benchmark == "pr7_campaign":
        check_pr7(doc, args)
    elif benchmark == "pr8_ingest":
        check_pr8(doc, args)
    elif benchmark == "pr9_ingest":
        check_pr9(doc, args)
    else:
        fail(f"unexpected benchmark {benchmark!r}")

    print(f"{args.path}: all commanded floors hold")


def check_pr6(doc, args):
    for flag, value in (
            ("--min-campaign-faults-per-sec",
             args.min_campaign_faults_per_sec),
            ("--min-ingest-events-per-sec",
             args.min_ingest_events_per_sec),
            ("--min-sharded-events-per-sec",
             args.min_sharded_events_per_sec)):
        if value is not None:
            fail(f"{flag} does not apply to pr6_columnar_pipeline")

    if args.min_generation_records_per_sec is not None:
        rows = [g for g in doc.get("generation", [])
                if g.get("profile") == args.generation_profile]
        if not rows:
            fail(f"no generation row with profile "
                 f"'{args.generation_profile}'")
        sweep = max(rows, key=lambda g: g.get("records", 0))
        rate = sweep.get("records_per_sec", 0.0)
        floor = args.min_generation_records_per_sec
        if rate < floor:
            fail(f"generation ({args.generation_profile}, "
                 f"{sweep.get('records')} records): "
                 f"{rate:,.0f} records/sec < floor {floor:,.0f}")
        print(f"generation {args.generation_profile} sweep: {rate:,.0f} "
              f"records/sec >= floor {floor:,.0f} "
              f"({sweep.get('records')} records)")

    if args.min_fitting_speedup_vs_seed is not None:
        row = doc.get("fitting", {}).get(args.fitting_row)
        if not isinstance(row, dict):
            fail(f"no fitting row '{args.fitting_row}'")
        speedup = row.get("speedup_vs_seed", 0.0)
        floor = args.min_fitting_speedup_vs_seed
        if speedup < floor:
            fail(f"fitting ({args.fitting_row}): speedup vs seed "
                 f"{speedup:.2f}x < floor {floor:.2f}x")
        print(f"fitting {args.fitting_row}: {speedup:.2f}x vs seed >= "
              f"floor {floor:.2f}x ({row.get('points')} points)")


def check_pr7(doc, args):
    for flag, value in (
            ("--min-generation-records-per-sec",
             args.min_generation_records_per_sec),
            ("--min-fitting-speedup-vs-seed",
             args.min_fitting_speedup_vs_seed),
            ("--min-ingest-events-per-sec",
             args.min_ingest_events_per_sec),
            ("--min-sharded-events-per-sec",
             args.min_sharded_events_per_sec)):
        if value is not None:
            fail(f"{flag} does not apply to pr7_campaign")

    if not doc.get("deterministic", False):
        fail("campaign benchmark reported a determinism mismatch")

    if args.min_campaign_faults_per_sec is not None:
        cell = doc.get("single_core")
        if not isinstance(cell, dict):
            fail("no single_core measurement")
        rate = cell.get("faults_per_sec", 0.0)
        floor = args.min_campaign_faults_per_sec
        if rate < floor:
            fail(f"campaign single-core: {rate:,.0f} faults/sec "
                 f"< floor {floor:,.0f}")
        print(f"campaign single-core: {rate:,.0f} faults/sec >= "
              f"floor {floor:,.0f} ({cell.get('faults')} faults over "
              f"{cell.get('runs')} runs)")


def check_pr8(doc, args):
    for flag, value in (
            ("--min-generation-records-per-sec",
             args.min_generation_records_per_sec),
            ("--min-fitting-speedup-vs-seed",
             args.min_fitting_speedup_vs_seed),
            ("--min-campaign-faults-per-sec",
             args.min_campaign_faults_per_sec),
            ("--min-sharded-events-per-sec",
             args.min_sharded_events_per_sec)):
        if value is not None:
            fail(f"{flag} does not apply to pr8_ingest")

    # Unconditional: the incrementally-maintained dataset must be
    # column-for-column identical to a from-scratch build.
    if not doc.get("identical", False):
        fail("ingest benchmark reported an incremental-vs-scratch mismatch")

    if args.min_ingest_events_per_sec is not None:
        cell = doc.get("single_core")
        if not isinstance(cell, dict):
            fail("no single_core measurement")
        rate = cell.get("events_per_sec", 0.0)
        floor = args.min_ingest_events_per_sec
        if rate < floor:
            fail(f"ingest single-core: {rate:,.0f} events/sec "
                 f"< floor {floor:,.0f}")
        print(f"ingest single-core: {rate:,.0f} events/sec >= "
              f"floor {floor:,.0f} ({cell.get('events')} events, "
              f"{cell.get('epochs')} epochs)")


def check_pr9(doc, args):
    for flag, value in (
            ("--min-generation-records-per-sec",
             args.min_generation_records_per_sec),
            ("--min-fitting-speedup-vs-seed",
             args.min_fitting_speedup_vs_seed),
            ("--min-campaign-faults-per-sec",
             args.min_campaign_faults_per_sec),
            ("--min-ingest-events-per-sec",
             args.min_ingest_events_per_sec)):
        if value is not None:
            fail(f"{flag} does not apply to pr9_ingest")

    # Unconditional: the sharded, incrementally-maintained datasets must
    # be column-for-column identical to a from-scratch build, and the
    # retention leg must stay bounded with every event accounted for in
    # sealed + tail + compacted.
    if not doc.get("identical", False):
        fail("sharded ingest reported an incremental-vs-scratch mismatch")
    retention = doc.get("retention")
    if not isinstance(retention, dict):
        fail("no retention leg in pr9_ingest")
    if not retention.get("accounted", False):
        fail("retention ledger does not account for every event "
             f"(sealed={retention.get('sealed')} "
             f"tail={retention.get('tail')} "
             f"compacted={retention.get('compacted')} "
             f"of {retention.get('events')})")
    if not retention.get("bounded", False):
        fail(f"retention peak {retention.get('peak_live_events'):,} live "
             f"events exceeded the bound for cap "
             f"{retention.get('max_sealed_events'):,}")

    if args.min_sharded_events_per_sec is not None:
        cell = doc.get("multi_shard")
        if not isinstance(cell, dict):
            fail("no multi_shard measurement")
        rate = cell.get("events_per_sec", 0.0)
        floor = args.min_sharded_events_per_sec
        if rate < floor:
            fail(f"sharded ingest ({cell.get('shards')} shards, "
                 f"{doc.get('cores')} cores): {rate:,.0f} events/sec "
                 f"< floor {floor:,.0f}")
        print(f"sharded ingest ({cell.get('shards')} shards, "
              f"{doc.get('cores')} cores): {rate:,.0f} events/sec >= "
              f"floor {floor:,.0f} ({cell.get('events')} events)")


if __name__ == "__main__":
    main()
