// hpcfail command-line tool: trace generation, validation, analysis, and
// fitting without writing C++.
//
//   hpcfail generate  --out FILE [--seed N]
//   hpcfail catalog
//   hpcfail validate  --trace FILE [--drop-out FILE]
//   hpcfail fit       (--trace FILE | --seed N) --system N [--node M]
//                     [--from YYYY-MM-DD] [--to YYYY-MM-DD]
//   hpcfail repair    (--trace FILE | --seed N)
//   hpcfail availability (--trace FILE | --seed N)
//
// Every subcommand accepts --threads N to bound the worker pool used for
// parallel generation and fitting (default: hardware concurrency).
//
// Every subcommand exits 0 on success and 1 on error with a message on
// stderr; `validate` exits 2 when issues were found (grep-able reports on
// stdout), matching the usual lint-tool convention.
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpcfail.hpp"

namespace {

using namespace hpcfail;

struct Options {
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const {
    return values.find(key) != values.end();
  }
  std::string get(const std::string& key) const {
    const auto it = values.find(key);
    if (it == values.end()) {
      throw Error("missing required option --" + key);
    }
    return it->second;
  }
  std::string get_or(const std::string& key,
                     const std::string& fallback) const {
    const auto it = values.find(key);
    return it != values.end() ? it->second : fallback;
  }
};

Options parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw Error("unexpected argument '" + arg + "'");
    }
    arg = arg.substr(2);
    if (i + 1 >= argc) {
      throw Error("option --" + arg + " needs a value");
    }
    opts.values[arg] = argv[++i];
  }
  return opts;
}

trace::FailureDataset load_dataset(const Options& opts) {
  if (opts.has("trace")) {
    return trace::read_csv_file(opts.get("trace"));
  }
  const std::uint64_t seed =
      std::stoull(opts.get_or("seed", "42"));
  return synth::generate_lanl_trace(seed);
}

int cmd_generate(const Options& opts) {
  const std::uint64_t seed = std::stoull(opts.get_or("seed", "42"));
  const trace::FailureDataset ds = synth::generate_lanl_trace(seed);
  trace::write_csv_file(opts.get("out"), ds);
  std::cout << "wrote " << ds.size() << " records (seed " << seed
            << ") to " << opts.get("out") << "\n";
  return 0;
}

int cmd_catalog(const Options&) {
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();
  report::TextTable table({"ID", "HW", "arch", "nodes", "procs",
                           "production"});
  for (const trace::SystemInfo& sys : catalog.systems()) {
    table.add_row({std::to_string(sys.id), std::string(1, sys.hw_type),
                   std::string(sys.numa ? "NUMA" : "SMP"),
                   std::to_string(sys.nodes), std::to_string(sys.procs),
                   format_timestamp(sys.production_start()).substr(0, 7) +
                       " .. " +
                       format_timestamp(sys.production_end()).substr(0,
                                                                     7)});
  }
  table.render(std::cout);
  std::cout << "total: " << catalog.total_nodes() << " nodes, "
            << catalog.total_procs() << " processors\n";
  return 0;
}

int cmd_validate(const Options& opts) {
  const trace::FailureDataset ds =
      trace::read_csv_file(opts.get("trace"));
  const trace::ValidationReport report =
      trace::validate(ds, trace::SystemCatalog::lanl());
  std::cout << report.records_checked << " records checked, "
            << report.issues.size() << " issues\n";
  for (const trace::ValidationIssue& issue : report.issues) {
    std::cout << "record " << issue.record_index << ": "
              << trace::to_string(issue.kind) << ": " << issue.message
              << "\n";
  }
  if (opts.has("drop-out")) {
    const trace::FailureDataset cleaned = trace::drop_flagged(ds, report);
    trace::write_csv_file(opts.get("drop-out"), cleaned);
    std::cout << "wrote " << cleaned.size() << " clean records to "
              << opts.get("drop-out") << "\n";
  }
  return report.clean() ? 0 : 2;
}

int cmd_fit(const Options& opts) {
  const trace::FailureDataset ds = load_dataset(opts);
  analysis::InterarrivalQuery query;
  query.system_id = std::stoi(opts.get("system"));
  if (opts.has("node")) query.node_id = std::stoi(opts.get("node"));
  if (opts.has("from")) {
    query.from = parse_timestamp(opts.get("from"));
  }
  if (opts.has("to")) query.to = parse_timestamp(opts.get("to"));
  const analysis::InterarrivalReport report =
      analysis::interarrival_analysis(ds, query);
  std::cout << report.gaps_seconds.size()
            << " interarrival times; mean "
            << format_double(report.summary.mean / 3600.0, 4)
            << " h, median "
            << format_double(report.summary.median / 3600.0, 4)
            << " h, C^2 " << format_double(report.summary.cv2, 4)
            << ", zero fraction "
            << format_double(report.zero_fraction, 3) << "\n";
  report::TextTable table({"model (best first)", "negLL", "AIC", "KS"});
  for (const auto& fit : report.fits) {
    table.add_row(fit.model->describe(),
                  {fit.neg_log_likelihood, fit.aic, fit.ks});
  }
  table.render(std::cout);
  return 0;
}

int cmd_repair(const Options& opts) {
  const trace::FailureDataset ds = load_dataset(opts);
  const analysis::RepairReport report =
      analysis::repair_analysis(ds, trace::SystemCatalog::lanl());
  report::TextTable table({"cause", "mean (min)", "median", "C^2", "n"});
  for (const auto& c : report.by_cause) {
    table.add_row(trace::to_string(c.cause),
                  {c.stats.mean, c.stats.median, c.stats.cv2,
                   static_cast<double>(c.stats.n)},
                  4);
  }
  table.add_row("all", {report.all.mean, report.all.median,
                        report.all.cv2,
                        static_cast<double>(report.all.n)},
                4);
  table.render(std::cout);
  std::cout << "best model: " << report.fits.front().model->describe()
            << "\n";
  return 0;
}

int cmd_availability(const Options& opts) {
  const trace::FailureDataset ds = load_dataset(opts);
  const auto rows = analysis::availability_analysis(
      ds, trace::SystemCatalog::lanl());
  report::TextTable table({"system", "failures", "downtime (h)",
                           "availability %"});
  for (const auto& a : rows) {
    table.add_row(a.system_id == 0 ? "site" : std::to_string(a.system_id),
                  {static_cast<double>(a.failures), a.downtime_hours,
                   a.availability * 100.0},
                  5);
  }
  table.render(std::cout);
  return 0;
}

void usage(std::ostream& out) {
  out << "usage: hpcfail <command> [options]\n"
         "  generate     --out FILE [--seed N]\n"
         "  catalog\n"
         "  validate     --trace FILE [--drop-out FILE]\n"
         "  fit          (--trace FILE | --seed N) --system N [--node M]\n"
         "               [--from YYYY-MM-DD] [--to YYYY-MM-DD]\n"
         "  repair       (--trace FILE | --seed N)\n"
         "  availability (--trace FILE | --seed N)\n"
         "global options:\n"
         "  --threads N  worker threads for generation/fitting\n"
         "               (default: hardware concurrency; output is\n"
         "               identical at any thread count)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 1;
  }
  const std::string command = argv[1];
  try {
    const Options opts = parse_options(argc, argv, 2);
    if (opts.has("threads")) {
      const int threads = std::stoi(opts.get("threads"));
      if (threads < 1) throw Error("--threads must be >= 1");
      set_parallelism(static_cast<unsigned>(threads));
    }
    if (command == "generate") return cmd_generate(opts);
    if (command == "catalog") return cmd_catalog(opts);
    if (command == "validate") return cmd_validate(opts);
    if (command == "fit") return cmd_fit(opts);
    if (command == "repair") return cmd_repair(opts);
    if (command == "availability") return cmd_availability(opts);
    if (command == "help" || command == "--help") {
      usage(std::cout);
      return 0;
    }
    std::cerr << "unknown command '" << command << "'\n";
    usage(std::cerr);
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
