// hpcfail command-line tool: trace generation, validation, analysis,
// fitting, and profiling without writing C++.
//
// Subcommands are declared in a table of ArgSpecs (name, type, default,
// required, help); parsing, typed access, per-subcommand `--help`, and the
// unknown-option diagnostics are all generated from that table, so adding
// an option is one line.  Every subcommand also accepts the global
// options:
//
//   --threads N            worker threads (default: hardware concurrency)
//   --metrics-out FILE     write an obs metrics dump after the command
//   --metrics-format FMT   json (default) | csv | prom
//   --help                 subcommand usage
//   --version              print the library version
//
// Exit codes: 0 success, 1 runtime failure (typed message on stderr),
// 2 usage error (bad/unknown/missing option) or `validate` finding
// issues — the usual lint-tool convention. Library errors map to
// distinct stderr prefixes by type: "parse error:", "validation
// error:", "fit error:", "io error:", "invalid argument:", and
// "error:" for everything else.
#include <charconv>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hpcfail.hpp"

#ifndef HPCFAIL_VERSION
#define HPCFAIL_VERSION "0.0.0-dev"
#endif

namespace {

using namespace hpcfail;

// ---------------------------------------------------------------------------
// Declarative option table

enum class ArgType { string, integer, uint64, real, timestamp, flag };

const char* type_label(ArgType type) {
  switch (type) {
    case ArgType::string: return "STR";
    case ArgType::integer: return "N";
    case ArgType::uint64: return "N";
    case ArgType::real: return "X";
    case ArgType::timestamp: return "YYYY-MM-DD";
    case ArgType::flag: return "";
  }
  return "?";
}

struct ArgSpec {
  std::string name;           ///< option name without the leading "--"
  ArgType type = ArgType::string;
  std::string default_value;  ///< empty: no default
  bool required = false;
  std::string help;
};

/// Options every subcommand accepts, appended to each subcommand's table.
const std::vector<ArgSpec>& global_specs() {
  static const std::vector<ArgSpec> kGlobals = {
      {"threads", ArgType::integer, "", false,
       "worker threads for generation/fitting (default: hardware "
       "concurrency; output is identical at any thread count)"},
      {"metrics-out", ArgType::string, "", false,
       "write collected metrics to FILE after the command"},
      {"metrics-format", ArgType::string, "json", false,
       "metrics dump format: json | csv | prom"},
  };
  return kGlobals;
}

/// Parsed option values with table-driven typed access.
class Args {
 public:
  Args(const std::vector<ArgSpec>* specs, std::string subcommand)
      : specs_(specs), subcommand_(std::move(subcommand)) {}

  void set(const std::string& name, std::string value) {
    values_[name] = std::move(value);
  }

  bool has(const std::string& name) const {
    return values_.count(name) != 0 || !spec(name).default_value.empty();
  }
  /// True only when the user passed the option explicitly.
  bool given(const std::string& name) const {
    return values_.count(name) != 0;
  }

  std::string get_string(const std::string& name) const {
    return raw(name);
  }
  int get_int(const std::string& name) const {
    return static_cast<int>(parse_integer(name, raw(name)));
  }
  std::uint64_t get_u64(const std::string& name) const {
    const long long v = parse_integer(name, raw(name));
    if (v < 0) {
      throw ParseError("option --" + name + " must be non-negative");
    }
    return static_cast<std::uint64_t>(v);
  }
  double get_double(const std::string& name) const {
    try {
      return parse_double(raw(name));
    } catch (const ParseError&) {
      throw ParseError("option --" + name + " expects a number, got '" +
                       raw(name) + "'");
    }
  }
  Seconds get_timestamp(const std::string& name) const {
    return parse_timestamp(raw(name));
  }

  const std::string& subcommand() const { return subcommand_; }

 private:
  const ArgSpec& spec(const std::string& name) const {
    for (const ArgSpec& s : *specs_) {
      if (s.name == name) return s;
    }
    for (const ArgSpec& s : global_specs()) {
      if (s.name == name) return s;
    }
    throw LogicError("option --" + name + " not declared for '" +
                     subcommand_ + "'");
  }

  std::string raw(const std::string& name) const {
    const ArgSpec& s = spec(name);
    const auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    if (!s.default_value.empty()) return s.default_value;
    throw ParseError("subcommand '" + subcommand_ +
                     "' requires option --" + name);
  }

  long long parse_integer(const std::string& name,
                          const std::string& text) const {
    long long value = 0;
    const char* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, value);
    if (ec != std::errc{} || ptr != end) {
      throw ParseError("option --" + name + " expects an integer, got '" +
                       text + "'");
    }
    return value;
  }

  const std::vector<ArgSpec>* specs_;
  std::string subcommand_;
  std::map<std::string, std::string> values_;
};

struct Subcommand {
  std::string name;
  std::string summary;
  std::vector<ArgSpec> args;
  int (*run)(const Args&);
};

const std::vector<Subcommand>& subcommands();

const Subcommand* find_subcommand(const std::string& name) {
  for (const Subcommand& sc : subcommands()) {
    if (sc.name == name) return &sc;
  }
  return nullptr;
}

void print_specs(std::ostream& out, const std::vector<ArgSpec>& specs) {
  for (const ArgSpec& s : specs) {
    std::string left = "  --" + s.name;
    if (s.type != ArgType::flag) left += std::string(" ") + type_label(s.type);
    if (left.size() < 26) left.resize(26, ' ');
    out << left << s.help;
    if (!s.default_value.empty()) out << " [default: " << s.default_value
                                      << "]";
    if (s.required) out << " (required)";
    out << "\n";
  }
}

void subcommand_usage(std::ostream& out, const Subcommand& sc) {
  out << "usage: hpcfail " << sc.name << " [options]\n\n"
      << sc.summary << "\n";
  if (!sc.args.empty()) {
    out << "\noptions:\n";
    print_specs(out, sc.args);
  }
  out << "\nglobal options:\n";
  print_specs(out, global_specs());
  out << "  --help                  show this message\n"
         "  --version               print the library version\n";
}

void usage(std::ostream& out) {
  out << "usage: hpcfail <command> [options]\n\ncommands:\n";
  for (const Subcommand& sc : subcommands()) {
    std::string left = "  " + sc.name;
    if (left.size() < 16) left.resize(16, ' ');
    out << left << sc.summary << "\n";
  }
  out << "\n'hpcfail <command> --help' lists each command's options;\n"
         "'hpcfail --version' prints the library version.\n";
}

/// Parses argv[first..] against the subcommand's table. Returns nullopt
/// when --help/--version was handled (caller exits 0).
std::optional<Args> parse_args(const Subcommand& sc, int argc, char** argv,
                               int first) {
  Args args(&sc.args, sc.name);
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      subcommand_usage(std::cout, sc);
      return std::nullopt;
    }
    if (arg == "--version") {
      std::cout << "hpcfail " << HPCFAIL_VERSION << "\n";
      return std::nullopt;
    }
    if (arg.rfind("--", 0) != 0) {
      throw ParseError("unexpected argument '" + arg +
                       "' for subcommand '" + sc.name + "'");
    }
    arg = arg.substr(2);
    const ArgSpec* spec = nullptr;
    for (const ArgSpec& s : sc.args) {
      if (s.name == arg) spec = &s;
    }
    for (const ArgSpec& s : global_specs()) {
      if (s.name == arg) spec = &s;
    }
    if (spec == nullptr) {
      throw ParseError("unknown option --" + arg + " for subcommand '" +
                       sc.name + "' (see 'hpcfail " + sc.name +
                       " --help')");
    }
    if (spec->type == ArgType::flag) {
      args.set(arg, "1");
      continue;
    }
    if (i + 1 >= argc) {
      throw ParseError("option --" + arg + " needs a value");
    }
    args.set(arg, argv[++i]);
  }
  for (const ArgSpec& s : sc.args) {
    if (s.required && !args.given(s.name)) {
      throw ParseError("subcommand '" + sc.name +
                       "' requires option --" + s.name);
    }
  }
  return args;
}

// ---------------------------------------------------------------------------
// Shared helpers

trace::FailureDataset load_dataset(const Args& args) {
  if (args.given("trace")) {
    return trace::read_csv_file(args.get_string("trace"));
  }
  return synth::generate_lanl_trace(args.get_u64("seed"));
}

void apply_global_options(const Args& args) {
  if (args.given("threads")) {
    const int threads = args.get_int("threads");
    if (threads < 1) throw ValidationError("--threads must be >= 1");
    set_parallelism(static_cast<unsigned>(threads));
  }
  // Validate the format eagerly so a typo fails before minutes of work.
  obs::export_format_from_string(args.get_string("metrics-format"));
}

void maybe_write_metrics(const Args& args) {
  if (!args.given("metrics-out")) return;
  const obs::ExportFormat format =
      obs::export_format_from_string(args.get_string("metrics-format"));
  obs::write_metrics_file(args.get_string("metrics-out"), format);
  std::cerr << "metrics written to " << args.get_string("metrics-out")
            << " (" << obs::to_string(format) << ")\n";
}

// ---------------------------------------------------------------------------
// Subcommand handlers

int cmd_generate(const Args& args) {
  const std::uint64_t seed = args.get_u64("seed");
  const trace::FailureDataset ds = synth::generate_lanl_trace(seed);
  trace::write_csv_file(args.get_string("out"), ds);
  std::cout << "wrote " << ds.size() << " records (seed " << seed
            << ") to " << args.get_string("out") << "\n";
  return 0;
}

int cmd_catalog(const Args&) {
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();
  report::TextTable table({"ID", "HW", "arch", "nodes", "procs",
                           "production"});
  for (const trace::SystemInfo& sys : catalog.systems()) {
    table.add_row({std::to_string(sys.id), std::string(1, sys.hw_type),
                   std::string(sys.numa ? "NUMA" : "SMP"),
                   std::to_string(sys.nodes), std::to_string(sys.procs),
                   format_timestamp(sys.production_start()).substr(0, 7) +
                       " .. " +
                       format_timestamp(sys.production_end()).substr(0,
                                                                     7)});
  }
  table.render(std::cout);
  std::cout << "total: " << catalog.total_nodes() << " nodes, "
            << catalog.total_procs() << " processors\n";
  return 0;
}

int cmd_validate(const Args& args) {
  const trace::FailureDataset ds =
      trace::read_csv_file(args.get_string("trace"));
  const trace::ValidationReport report =
      trace::validate(ds, trace::SystemCatalog::lanl());
  std::cout << report.records_checked << " records checked, "
            << report.issues.size() << " issues\n";
  for (const trace::ValidationIssue& issue : report.issues) {
    std::cout << "record " << issue.record_index << ": "
              << trace::to_string(issue.kind) << ": " << issue.message
              << "\n";
  }
  if (args.given("drop-out")) {
    const trace::FailureDataset cleaned = trace::drop_flagged(ds, report);
    trace::write_csv_file(args.get_string("drop-out"), cleaned);
    std::cout << "wrote " << cleaned.size() << " clean records to "
              << args.get_string("drop-out") << "\n";
  }
  return report.clean() ? 0 : 2;
}

int cmd_fit(const Args& args) {
  const trace::FailureDataset ds = load_dataset(args);
  analysis::InterarrivalQuery query;
  query.system_id = args.get_int("system");
  if (args.given("node")) query.node_id = args.get_int("node");
  if (args.given("from")) query.from = args.get_timestamp("from");
  if (args.given("to")) query.to = args.get_timestamp("to");
  const analysis::InterarrivalReport report =
      analysis::interarrival_analysis(ds, query);
  std::cout << report.gaps_seconds.size()
            << " interarrival times; mean "
            << format_double(report.summary.mean / 3600.0, 4)
            << " h, median "
            << format_double(report.summary.median / 3600.0, 4)
            << " h, C^2 " << format_double(report.summary.cv2, 4)
            << ", zero fraction "
            << format_double(report.zero_fraction, 3) << "\n";
  report::TextTable table({"model (best first)", "negLL", "AIC", "KS",
                           "iters"});
  for (const auto& fit : report.fits) {
    table.add_row(fit.model->describe(),
                  {fit.nll, fit.aic, fit.ks,
                   static_cast<double>(fit.iterations)});
  }
  table.render(std::cout);
  if (report.fits.failed_families > 0) {
    std::cout << report.fits.failed_families
              << " family(ies) failed to converge\n";
  }
  return 0;
}

int cmd_repair(const Args& args) {
  const trace::FailureDataset ds = load_dataset(args);
  const analysis::RepairReport report =
      analysis::repair_analysis(ds, trace::SystemCatalog::lanl());
  report::TextTable table({"cause", "mean (min)", "median", "C^2", "n"});
  for (const auto& c : report.by_cause) {
    table.add_row(trace::to_string(c.cause),
                  {c.stats.mean, c.stats.median, c.stats.cv2,
                   static_cast<double>(c.stats.n)},
                  4);
  }
  table.add_row("all", {report.all.mean, report.all.median,
                        report.all.cv2,
                        static_cast<double>(report.all.n)},
                4);
  table.render(std::cout);
  std::cout << "best model: " << report.fits.best().model->describe()
            << "\n";
  return 0;
}

int cmd_availability(const Args& args) {
  const trace::FailureDataset ds = load_dataset(args);
  const auto rows = analysis::availability_analysis(
      ds, trace::SystemCatalog::lanl());
  report::TextTable table({"system", "failures", "downtime (h)",
                           "availability %"});
  for (const auto& a : rows) {
    table.add_row(a.system_id == 0 ? "site" : std::to_string(a.system_id),
                  {static_cast<double>(a.failures), a.downtime_hours,
                   a.availability * 100.0},
                  5);
  }
  table.render(std::cout);
  return 0;
}

int cmd_report(const Args& args) {
  const trace::FailureDataset ds = load_dataset(args);
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();
  const int system_id = args.get_int("system");
  std::ostream& out = std::cout;

  out << "hpcfail failure report: " << ds.size() << " records, "
      << format_timestamp(ds.first_start()).substr(0, 10) << " .. "
      << format_timestamp(ds.last_end()).substr(0, 10) << "\n\n";

  // Fig 1(a): the root-cause breakdown over every record.
  const analysis::RootCauseReport causes =
      analysis::root_cause_breakdown(ds, catalog);
  std::vector<std::pair<std::string, double>> bars;
  for (const trace::RootCause cause : trace::kAllRootCauses) {
    bars.emplace_back(
        trace::to_string(cause),
        causes.all.count_percent[analysis::breakdown_index(cause)]);
  }
  report::bar_chart(out, "failures by root cause (% of records)", bars);
  out << "\n";

  // Fig 2: failure rates per system.
  report::TextTable rates(
      {"system", "HW", "failures", "fail/yr", "fail/yr/proc"});
  for (const analysis::SystemRate& r : analysis::failure_rates(ds, catalog)) {
    rates.add_row({std::to_string(r.system_id), std::string(1, r.hw_type),
                   std::to_string(r.failures),
                   format_double(r.failures_per_year, 4),
                   format_double(r.failures_per_year_per_proc, 4)});
  }
  rates.render(out);
  out << "\n";

  // Fig 6 view (ii): system-wide interarrival fits for --system. The
  // solver iteration counts are intentionally omitted: the report output
  // is golden-snapshotted and only statistically meaningful values
  // belong in the snapshot.
  analysis::InterarrivalQuery query;
  query.system_id = system_id;
  const analysis::InterarrivalReport inter =
      analysis::interarrival_analysis(ds, query);
  out << "system " << system_id << " interarrival times: "
      << inter.gaps_seconds.size() << " gaps, mean "
      << format_double(inter.summary.mean / 3600.0, 4) << " h, C^2 "
      << format_double(inter.summary.cv2, 4) << ", zero fraction "
      << format_double(inter.zero_fraction, 3) << "\n";
  report::TextTable fits({"model (best first)", "negLL", "AIC", "KS"});
  for (const auto& fit : inter.fits) {
    fits.add_row(fit.model->describe(), {fit.nll, fit.aic, fit.ks});
  }
  fits.render(out);
  out << "\n";

  // Table 2: repair times by root cause.
  const analysis::RepairReport repair =
      analysis::repair_analysis(ds, catalog);
  report::TextTable by_cause({"cause", "mean (min)", "median", "C^2", "n"});
  for (const auto& c : repair.by_cause) {
    by_cause.add_row(trace::to_string(c.cause),
                     {c.stats.mean, c.stats.median, c.stats.cv2,
                      static_cast<double>(c.stats.n)},
                     4);
  }
  by_cause.add_row("all", {repair.all.mean, repair.all.median,
                           repair.all.cv2,
                           static_cast<double>(repair.all.n)},
                   4);
  by_cause.render(out);
  out << "best repair-time model: " << repair.fits.best().model->describe()
      << "\n";
  return 0;
}

int cmd_profile(const Args& args) {
  struct StageRow {
    std::string name;
    double wall = 0.0;
    double cpu = 0.0;
  };
  std::vector<StageRow> rows;
  // Each stage runs under its own StageTimer so the table is read off the
  // timers directly (and the same numbers land in the obs registry as
  // stage.profile.* gauges for --metrics-out).
  const auto timed = [&rows](const std::string& name, auto&& fn) {
    obs::StageTimer stage("profile." + name);
    fn();
    stage.stop();
    rows.push_back({name, stage.wall_seconds(), stage.cpu_seconds()});
  };

  const std::uint64_t seed = args.get_u64("seed");
  const int system_id = args.get_int("system");

  trace::FailureDataset ds;
  if (args.given("trace")) {
    timed("load", [&] { ds = trace::read_csv_file(args.get_string("trace")); });
  } else {
    timed("generate", [&] { ds = synth::generate_lanl_trace(seed); });
  }
  const trace::SystemCatalog& catalog = trace::SystemCatalog::lanl();

  timed("validate", [&] { (void)trace::validate(ds, catalog); });
  // Force the one-time index build so the analysis stages below measure
  // extraction cost alone.
  timed("index", [&] { (void)ds.index(); });
  timed("failure_rates", [&] { (void)analysis::failure_rates(ds, catalog); });
  timed("interarrival", [&] {
    analysis::InterarrivalQuery query;
    query.system_id = system_id;
    (void)analysis::interarrival_analysis(ds, query);
  });
  timed("per_node_fits", [&] {
    (void)analysis::per_node_interarrival_fits(ds, system_id);
  });
  timed("repair", [&] { (void)analysis::repair_analysis(ds, catalog); });
  timed("availability", [&] {
    (void)analysis::availability_analysis(ds, catalog);
  });

  std::cout << ds.size() << " records, " << parallelism() << " threads\n";
  report::TextTable table({"stage", "wall (s)", "cpu (s)", "cpu/wall"});
  double total_wall = 0.0;
  double total_cpu = 0.0;
  for (const StageRow& r : rows) {
    table.add_row(r.name,
                  {r.wall, r.cpu, r.wall > 0.0 ? r.cpu / r.wall : 0.0}, 4);
    total_wall += r.wall;
    total_cpu += r.cpu;
  }
  table.add_row("total",
                {total_wall, total_cpu,
                 total_wall > 0.0 ? total_cpu / total_wall : 0.0},
                4);
  table.render(std::cout);
  return 0;
}

int cmd_campaign(const Args& args) {
  sim::CampaignSpec spec;
  std::vector<sim::CampaignScenario> library = sim::default_scenarios();
  if (args.given("trace")) {
    const trace::FailureDataset ds =
        trace::read_csv_file(args.get_string("trace"));
    library.push_back(
        sim::replay_scenario(ds, args.get_int("replay-system")));
  }
  const std::string scenario = args.get_string("scenario");
  if (scenario == "all") {
    spec.scenarios = std::move(library);
  } else {
    std::string known;
    for (const sim::CampaignScenario& s : library) {
      if (s.name == scenario) spec.scenarios.push_back(s);
      known += " | " + s.name;
    }
    if (spec.scenarios.empty()) {
      throw ValidationError("unknown scenario '" + scenario +
                            "' (expected: all" + known + ")");
    }
  }
  const std::string policy = args.get_string("policy");
  for (const sim::CampaignPolicy& p : sim::default_policy_set()) {
    if (policy == "all" || p.name == policy) spec.policies.push_back(p);
  }
  if (spec.policies.empty()) {
    throw ValidationError("unknown policy '" + policy +
                          "' (expected: all | none | hourly | hourly-ranked)");
  }
  spec.runs_per_cell = args.get_u64("runs");
  spec.seed = args.get_u64("seed");
  const sim::Campaign campaign(std::move(spec));

  if (args.given("dry-run")) {
    std::cout << "campaign: " << campaign.spec().scenarios.size()
              << " scenario(s) x " << campaign.spec().policies.size()
              << " policy(ies) x " << campaign.spec().runs_per_cell
              << " replicate(s) = " << campaign.total_runs()
              << " runs, fingerprint " << campaign.fingerprint() << "\n";
    report::TextTable table(
        {"cell", "scenario", "policy", "nodes", "faults/run"});
    for (std::size_t cell = 0; cell < campaign.cell_count(); ++cell) {
      const auto schedule = campaign.schedule_for(cell, 0);
      table.add_row(
          {std::to_string(cell), campaign.scenario_of_cell(cell).name,
           campaign.policy_of_cell(cell).name,
           std::to_string(campaign.scenario_of_cell(cell).node_count),
           std::to_string(schedule.size())});
    }
    table.render(std::cout);
    return 0;
  }

  sim::CampaignCheckpoint resume;
  const sim::CampaignCheckpoint* resume_ptr = nullptr;
  std::string checkpoint_path;
  if (args.given("checkpoint")) {
    checkpoint_path = args.get_string("checkpoint");
    if (std::ifstream(checkpoint_path).good()) {
      resume = sim::load_campaign_checkpoint(checkpoint_path);
      resume_ptr = &resume;
      std::cout << "resuming from " << checkpoint_path << " ("
                << resume.completed.size() << "/" << resume.total_runs
                << " runs done)\n";
    }
  }

  sim::CampaignResult result;
  if (args.given("limit-runs")) {
    const sim::CampaignCheckpoint advanced =
        campaign.run_partial(args.get_u64("limit-runs"), resume_ptr);
    if (!checkpoint_path.empty()) {
      sim::save_campaign_checkpoint(checkpoint_path, advanced);
    }
    if (!advanced.complete()) {
      std::cout << "campaign paused: " << advanced.completed.size() << "/"
                << advanced.total_runs << " runs done\n";
      return 0;
    }
    result = campaign.summarize(advanced);
  } else {
    result = campaign.run(resume_ptr);
    if (!checkpoint_path.empty()) {
      sim::CampaignCheckpoint finished;
      finished.fingerprint = campaign.fingerprint();
      finished.total_runs = campaign.total_runs();
      finished.completed = result.runs;
      sim::save_campaign_checkpoint(checkpoint_path, finished);
    }
  }

  const auto render_report = [&result](std::ostream& out) {
    report::TextTable table({"scenario", "policy", "runs", "faults",
                             "makespan (h)", "95% CI", "waste %",
                             "interrupts"});
    for (const sim::CampaignCellSummary& c : result.cells) {
      table.add_row(
          {c.scenario, c.policy, std::to_string(c.runs),
           std::to_string(c.faults_injected),
           format_double(c.makespan.point / 3600.0, 4),
           format_double(c.makespan.lo / 3600.0, 4) + ".." +
               format_double(c.makespan.hi / 3600.0, 4),
           format_double(c.waste_fraction.point * 100.0, 3),
           format_double(c.interruptions.point, 3)});
    }
    table.render(out);
    out << "total faults injected: " << result.total_faults_injected()
        << " across " << result.runs.size() << " runs\n";
  };
  render_report(std::cout);
  if (args.given("report-out")) {
    std::ofstream out(args.get_string("report-out"));
    if (!out) {
      throw IoError("cannot open report file: " +
                    args.get_string("report-out"));
    }
    render_report(out);
    out.flush();
    if (!out) {
      throw IoError("failed writing report file: " +
                    args.get_string("report-out"));
    }
    std::cerr << "campaign report written to "
              << args.get_string("report-out") << "\n";
  }
  return 0;
}

serve::Server* g_serve_instance = nullptr;

extern "C" void handle_stop_signal(int) {
  // Server::stop() is async-signal-safe (one self-pipe write).
  if (g_serve_instance != nullptr) g_serve_instance->stop();
}

int cmd_serve(const Args& args) {
  serve::ServerOptions opts;
  opts.host = args.get_string("host");
  opts.ingest_port = args.get_int("ingest-port");
  opts.http_port = args.get_int("http-port");
  opts.window_seconds =
      static_cast<Seconds>(args.get_int("window-hours")) * kSecondsPerHour;
  opts.bucket_seconds = static_cast<Seconds>(args.get_u64("bucket-seconds"));
  opts.max_buckets = static_cast<std::size_t>(args.get_u64("max-buckets"));
  opts.max_events = args.get_u64("max-events");
  opts.ingest_threads = static_cast<std::size_t>(args.get_u64("ingest-threads"));
  if (args.given("retain-hours")) {
    opts.epoch.retain_seconds =
        static_cast<Seconds>(args.get_u64("retain-hours")) * kSecondsPerHour;
  }
  opts.epoch.max_sealed_events =
      static_cast<std::size_t>(args.get_u64("max-sealed-events"));
  if (args.given("tail")) opts.tail_path = args.get_string("tail");
  if (args.given("format")) opts.ingest_format = args.get_string("format");

  std::unique_ptr<serve::Server> server;
  if (args.given("trace")) {
    trace::FailureDataset seed =
        trace::read_csv_file(args.get_string("trace"));
    std::cout << "seeded with " << seed.size() << " records from "
              << args.get_string("trace") << "\n";
    server = std::make_unique<serve::Server>(opts, std::move(seed));
  } else {
    server = std::make_unique<serve::Server>(opts);
  }
  server->start();
  g_serve_instance = server.get();
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);

  // key=value lines so scripts can scrape the resolved ephemeral ports.
  std::cout << "ingest_port=" << server->ingest_port() << "\n"
            << "http_port=" << server->http_port() << "\n"
            << "serving on " << opts.host << " (line protocol -> ingest, "
            << "GET /report /stats /metrics /healthz /shutdown -> http)"
            << std::endl;

  server->wait();
  g_serve_instance = nullptr;
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  std::cout << "ingested " << server->events_ingested() << " events ("
            << server->events_rejected() << " rejected), index epoch "
            << server->dataset().epoch() << ", " << server->dataset().size()
            << " records";
  if (server->dataset().compacted_events() > 0) {
    std::cout << ", " << server->dataset().compacted_events()
              << " compacted";
  }
  std::cout << "\n";
  return 0;
}

int cmd_replay(const Args& args) {
  serve::ReplayOptions opts;
  opts.host = args.get_string("host");
  opts.port = args.get_int("port");
  opts.speedup = args.get_double("speedup");
  opts.connections = static_cast<std::size_t>(args.get_u64("connections"));
  opts.limit = args.get_u64("limit");
  if (args.given("format")) {
    opts.adapter = &trace::adapter_for(args.get_string("format"));
  }

  // --format selects both the file parser and the wire format, so a
  // foreign trace replays into a daemon started with the same --format.
  const trace::FailureDataset dataset =
      opts.adapter != nullptr
          ? trace::read_adapter_file(args.get_string("trace"), *opts.adapter)
          : trace::read_csv_file(args.get_string("trace"));
  std::cout << "replaying " << dataset.size() << " records to " << opts.host
            << ":" << opts.port << " over " << opts.connections
            << " connection(s)";
  if (opts.speedup > 0.0) {
    std::cout << " at " << format_double(opts.speedup, 6) << "x trace time";
  } else {
    std::cout << " at full speed";
  }
  std::cout << std::endl;

  const serve::ReplayStats stats = serve::replay_dataset(dataset, opts);

  // key=value lines so scripts (the CI replay-smoke job) can assert on
  // exact totals.
  std::cout << "sent=" << stats.events_sent << "\n"
            << "bytes=" << stats.bytes_sent << "\n"
            << "trace_span_seconds=" << stats.trace_span << "\n"
            << "wall_seconds=" << format_double(stats.wall_seconds, 6) << "\n"
            << "events_per_sec=" << format_double(stats.events_per_sec, 6)
            << "\n";
  return 0;
}

/// One `--trace` entry, `PATH` or `PATH:FORMAT` — the suffix is treated
/// as a format only when it names a registered adapter, so plain paths
/// containing ':' still load as native CSV.
struct TraceEntry {
  std::string path;
  const trace::Adapter* adapter = nullptr;
};

TraceEntry parse_trace_entry(const std::string& entry) {
  const std::size_t colon = entry.rfind(':');
  if (colon != std::string::npos) {
    const std::string suffix = entry.substr(colon + 1);
    for (const trace::Adapter* adapter : trace::all_adapters()) {
      if (adapter->name() == suffix) {
        return {entry.substr(0, colon), adapter};
      }
    }
  }
  return {entry, nullptr};
}

int cmd_compare(const Args& args) {
  std::vector<analysis::CompareInput> inputs;
  if (args.given("site")) {
    for (const std::string& name : split(args.get_string("site"), ',')) {
      const synth::SiteProfile& profile = synth::site_profile(name);
      analysis::CompareInput input;
      input.label = std::string(profile.name);
      input.dataset = synth::generate_site_trace(
          profile, args.get_u64("seed"), args.get_double("duration-scale"));
      input.procs = static_cast<double>(profile.procs);
      inputs.push_back(std::move(input));
    }
  }
  if (args.given("trace")) {
    for (const std::string& entry : split(args.get_string("trace"), ',')) {
      const TraceEntry parsed = parse_trace_entry(entry);
      analysis::CompareInput input;
      input.label = parsed.path;
      input.dataset =
          parsed.adapter != nullptr
              ? trace::read_adapter_file(parsed.path, *parsed.adapter)
              : trace::read_csv_file(parsed.path);
      inputs.push_back(std::move(input));
    }
  }
  if (inputs.empty()) {
    throw ValidationError(
        "compare needs at least one --site or --trace entry");
  }

  const analysis::CompareReport report = analysis::compare_sites(inputs);
  report::render_compare(std::cout, report);

  const auto write_file = [](const std::string& path, auto&& emit) {
    std::ofstream out(path);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    emit(out);
    out.flush();
    if (!out) throw IoError("write failed for '" + path + "'");
  };
  if (args.given("out")) {
    write_file(args.get_string("out"), [&report](std::ostream& out) {
      report::render_compare(out, report);
    });
    std::cerr << "comparison report written to " << args.get_string("out")
              << "\n";
  }
  if (args.given("csv-out")) {
    write_file(args.get_string("csv-out"), [&report](std::ostream& out) {
      report::write_compare_csv(out, report);
    });
    std::cerr << "comparison CSV written to " << args.get_string("csv-out")
              << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// The subcommand table

const std::vector<Subcommand>& subcommands() {
  static const std::vector<Subcommand> kTable = {
      {"generate", "synthesize a LANL-shaped failure trace",
       {
           {"out", ArgType::string, "", true, "output CSV path"},
           {"seed", ArgType::uint64, "42", false, "generator seed"},
       },
       &cmd_generate},
      {"catalog", "print the LANL system catalog", {}, &cmd_catalog},
      {"validate", "check a trace for consistency issues (exit 2 if any)",
       {
           {"trace", ArgType::string, "", true, "trace CSV to validate"},
           {"drop-out", ArgType::string, "", false,
            "write the trace minus flagged records to FILE"},
       },
       &cmd_validate},
      {"fit", "fit interarrival-time distributions (Fig 6)",
       {
           {"trace", ArgType::string, "", false,
            "trace CSV (default: generate with --seed)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed when no --trace"},
           {"system", ArgType::integer, "", true, "system id to analyze"},
           {"node", ArgType::integer, "", false,
            "restrict to one node (view i)"},
           {"from", ArgType::timestamp, "", false, "window start"},
           {"to", ArgType::timestamp, "", false, "window end"},
       },
       &cmd_fit},
      {"repair", "repair-time statistics and fits (Table 2, Fig 7)",
       {
           {"trace", ArgType::string, "", false,
            "trace CSV (default: generate with --seed)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed when no --trace"},
       },
       &cmd_repair},
      {"availability", "per-system availability summary",
       {
           {"trace", ArgType::string, "", false,
            "trace CSV (default: generate with --seed)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed when no --trace"},
       },
       &cmd_availability},
      {"report", "composite text report (Figs 1/2/6, Table 2)",
       {
           {"trace", ArgType::string, "", false,
            "trace CSV (default: generate with --seed)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed when no --trace"},
           {"system", ArgType::integer, "20", false,
            "system id for the interarrival section"},
       },
       &cmd_report},
      {"profile", "run the full pipeline, print a stage wall/cpu table",
       {
           {"trace", ArgType::string, "", false,
            "trace CSV (default: generate with --seed)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed when no --trace"},
           {"system", ArgType::integer, "20", false,
            "system id for the interarrival stages"},
       },
       &cmd_profile},
      {"campaign", "run a fault-injection campaign over the simulator",
       {
           {"scenario", ArgType::string, "all", false,
            "scenario: cascade | bursts | contention | renewal | all"},
           {"policy", ArgType::string, "all", false,
            "policy: none | hourly | hourly-ranked | all"},
           {"runs", ArgType::uint64, "8", false,
            "replicates per (scenario, policy) cell"},
           {"seed", ArgType::uint64, "42", false,
            "campaign seed (results are bit-identical at any --threads)"},
           {"trace", ArgType::string, "", false,
            "trace CSV: adds a replay scenario of --replay-system"},
           {"replay-system", ArgType::integer, "20", false,
            "system id to replay when --trace is given"},
           {"checkpoint", ArgType::string, "", false,
            "checkpoint FILE: resume from it when present, save after"},
           {"limit-runs", ArgType::uint64, "", false,
            "execute at most N outstanding runs, checkpoint, and stop"},
           {"report-out", ArgType::string, "", false,
            "also write the campaign report to FILE"},
           {"dry-run", ArgType::flag, "", false,
            "validate the spec and print per-cell schedules without "
            "simulating"},
       },
       &cmd_campaign},
      {"serve", "streaming ingest daemon with live windowed analytics",
       {
           {"host", ArgType::string, "127.0.0.1", false,
            "address both listeners bind to"},
           {"ingest-port", ArgType::integer, "0", false,
            "TCP line-protocol ingest port (0 = ephemeral, printed as "
            "ingest_port=N)"},
           {"http-port", ArgType::integer, "0", false,
            "HTTP report/metrics port (0 = ephemeral, printed as "
            "http_port=N)"},
           {"window-hours", ArgType::integer, "24", false,
            "default /report window"},
           {"bucket-seconds", ArgType::uint64, "3600", false,
            "analytics bucket width"},
           {"max-buckets", ArgType::uint64, "336", false,
            "retained buckets per analytics cell"},
           {"tail", ArgType::string, "", false,
            "also follow an appended trace file"},
           {"trace", ArgType::string, "", false,
            "seed dataset CSV loaded before serving"},
           {"max-events", ArgType::uint64, "0", false,
            "stop after N accepted events (0 = run until SIGINT or "
            "/shutdown)"},
           {"ingest-threads", ArgType::uint64, "1", false,
            "ingest shards/threads; sealed snapshots are bit-identical "
            "at any count"},
           {"retain-hours", ArgType::uint64, "", false,
            "compact raw events older than N hours into per-cell "
            "sufficient statistics at seal time"},
           {"max-sealed-events", ArgType::uint64, "0", false,
            "compact oldest events when the sealed snapshot exceeds N "
            "(0 = unbounded)"},
           {"format", ArgType::string, "", false,
            "ingest wire format: lu | mistral | tan (default: native CSV "
            "rows)"},
       },
       &cmd_serve},
      {"replay", "replay a trace into a daemon's TCP ingest at scaled time",
       {
           {"trace", ArgType::string, "", true, "trace CSV to replay"},
           {"host", ArgType::string, "127.0.0.1", false, "daemon address"},
           {"port", ArgType::integer, "", true, "daemon ingest port"},
           {"speedup", ArgType::real, "0", false,
            "trace-seconds per wall-second (0 = as fast as possible)"},
           {"connections", ArgType::uint64, "1", false,
            "parallel TCP connections, events sharded by (system, node)"},
           {"limit", ArgType::uint64, "0", false,
            "replay at most N events (0 = whole trace)"},
           {"format", ArgType::string, "", false,
            "trace file and wire format: lu | mistral | tan (default: "
            "native CSV)"},
       },
       &cmd_replay},
      {"compare", "side-by-side cross-study battery over several traces",
       {
           {"site", ArgType::string, "", false,
            "comma-separated synthetic site profiles: lu | mistral | tan"},
           {"trace", ArgType::string, "", false,
            "comma-separated trace files, each PATH or PATH:FORMAT "
            "(lu | mistral | tan; default native CSV)"},
           {"seed", ArgType::uint64, "42", false,
            "generator seed for --site traces"},
           {"duration-scale", ArgType::real, "1", false,
            "scale factor on each profile's observation window"},
           {"out", ArgType::string, "", false,
            "also write the text report to FILE"},
           {"csv-out", ArgType::string, "", false,
            "also write the per-site CSV to FILE"},
       },
       &cmd_compare},
  };
  return kTable;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(std::cout);
    return 0;
  }
  if (command == "--version") {
    std::cout << "hpcfail " << HPCFAIL_VERSION << "\n";
    return 0;
  }
  try {
    const Subcommand* sc = find_subcommand(command);
    if (sc == nullptr) {
      std::cerr << "unknown command '" << command << "'\n";
      usage(std::cerr);
      return 2;
    }
    const std::optional<Args> args = parse_args(*sc, argc, argv, 2);
    if (!args) return 0;  // --help / --version handled
    apply_global_options(*args);
    const int rc = sc->run(*args);
    maybe_write_metrics(*args);
    return rc;
  } catch (const ParseError& e) {
    // Usage errors (bad/unknown/missing options) exit 2; runtime
    // failures below exit 1.
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  } catch (const ValidationError& e) {
    std::cerr << "validation error: " << e.what() << "\n";
    return 1;
  } catch (const FitError& e) {
    std::cerr << "fit error: " << e.what() << "\n";
    return 1;
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return 1;
  } catch (const InvalidArgument& e) {
    std::cerr << "invalid argument: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
