#!/usr/bin/env python3
"""Validates an hpcfail metrics JSON dump against schema version 1.

Usage: check_metrics_schema.py FILE [--require-stage STAGE ...]
           [--require-gauge NAME ...] [--require-counter NAME ...]

Checks the layout emitted by obs::to_json (schema "hpcfail.metrics",
schema_version 1): top-level keys and types, per-entry shapes, histogram
bucket ordering, and optionally that stage gauges exist for the named
pipeline stages. --require-gauge / --require-counter assert that a
specific metric was recorded at all (e.g. the "dataset.bytes" storage
gauge or the "fit.suffstat_reuse" counter), catching instrumentation
points that silently fall out of the pipeline. Exits non-zero with a
message on the first violation. Stdlib only, so CI can run it anywhere
python3 exists.
"""
import json
import sys


def fail(message):
    print(f"metrics schema violation: {message}", file=sys.stderr)
    sys.exit(1)


def check_named_values(entries, key, value_type):
    if not isinstance(entries, list):
        fail(f"'{key}' must be an array")
    for entry in entries:
        if not isinstance(entry, dict):
            fail(f"'{key}' entries must be objects")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            fail(f"'{key}' entry missing a non-empty string 'name'")
        if not isinstance(entry.get("value"), value_type):
            fail(f"'{key}' entry '{entry['name']}' has a non-numeric value")


def check_histograms(histograms):
    if not isinstance(histograms, list):
        fail("'histograms' must be an array")
    for h in histograms:
        name = h.get("name")
        if not isinstance(name, str) or not name:
            fail("histogram missing a non-empty string 'name'")
        for field in ("count", "sum", "min", "max"):
            if not isinstance(h.get(field), (int, float)):
                fail(f"histogram '{name}' missing numeric '{field}'")
        buckets = h.get("buckets")
        if not isinstance(buckets, list):
            fail(f"histogram '{name}' missing 'buckets' array")
        total = 0
        previous_bound = float("-inf")
        for bucket in buckets:
            le = bucket.get("le")
            count = bucket.get("count")
            if not isinstance(le, (int, float)) or not isinstance(count, int):
                fail(f"histogram '{name}' has a malformed bucket")
            if le <= previous_bound:
                fail(f"histogram '{name}' bucket bounds not ascending")
            previous_bound = le
            total += count
        if total != h["count"]:
            fail(f"histogram '{name}' bucket counts {total} != count "
                 f"{h['count']}")


def check_spans(spans):
    if not isinstance(spans, list):
        fail("'spans' must be an array")
    ids = set()
    for s in spans:
        for field, kind in (("id", int), ("parent_id", int),
                            ("start_seconds", (int, float)),
                            ("duration_seconds", (int, float))):
            if not isinstance(s.get(field), kind):
                fail(f"span missing {field}")
        if not isinstance(s.get("name"), str) or not s["name"]:
            fail("span missing a non-empty string 'name'")
        if s["id"] == 0 or s["id"] in ids:
            fail(f"span id {s['id']} is zero or duplicated")
        ids.add(s["id"])
    for s in spans:
        if s["parent_id"] != 0 and s["parent_id"] not in ids:
            # Parents can legitimately be missing only when the log was
            # truncated at the kMaxSpans cap.
            return False
    return True


def main():
    args = sys.argv[1:]
    if not args:
        fail("usage: check_metrics_schema.py FILE [--require-stage STAGE ...]")
    path = args[0]
    required_stages = []
    required_gauges = []
    required_counters = []
    i = 1
    while i < len(args):
        if args[i] == "--require-stage" and i + 1 < len(args):
            required_stages.append(args[i + 1])
            i += 2
        elif args[i] == "--require-gauge" and i + 1 < len(args):
            required_gauges.append(args[i + 1])
            i += 2
        elif args[i] == "--require-counter" and i + 1 < len(args):
            required_counters.append(args[i + 1])
            i += 2
        else:
            fail(f"unknown argument '{args[i]}'")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != "hpcfail.metrics":
        fail(f"schema is {doc.get('schema')!r}, expected 'hpcfail.metrics'")
    if doc.get("schema_version") != 1:
        fail(f"schema_version is {doc.get('schema_version')!r}, expected 1")
    for key in ("counters", "gauges", "histograms", "spans",
                "spans_dropped"):
        if key not in doc:
            fail(f"missing top-level key '{key}'")

    check_named_values(doc["counters"], "counters", int)
    check_named_values(doc["gauges"], "gauges", (int, float))
    check_histograms(doc["histograms"])
    all_parents = check_spans(doc["spans"])
    if not isinstance(doc["spans_dropped"], int):
        fail("'spans_dropped' must be an integer")
    if doc["spans_dropped"] == 0 and not all_parents:
        fail("span parent_id references a span that was never logged")

    gauge_names = {g["name"] for g in doc["gauges"]}
    for stage in required_stages:
        wanted = f"stage.{stage}.wall_seconds"
        if wanted not in gauge_names:
            fail(f"required stage gauge '{wanted}' not present")
    for gauge in required_gauges:
        if gauge not in gauge_names:
            fail(f"required gauge '{gauge}' not present")
    counter_names = {c["name"] for c in doc["counters"]}
    for counter in required_counters:
        if counter not in counter_names:
            fail(f"required counter '{counter}' not present")

    print(f"{path}: schema v{doc['schema_version']} OK "
          f"({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
          f"{len(doc['histograms'])} histograms, {len(doc['spans'])} spans)")


if __name__ == "__main__":
    main()
