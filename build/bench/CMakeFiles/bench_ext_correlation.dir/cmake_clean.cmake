file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_correlation.dir/bench_ext_correlation.cpp.o"
  "CMakeFiles/bench_ext_correlation.dir/bench_ext_correlation.cpp.o.d"
  "bench_ext_correlation"
  "bench_ext_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
