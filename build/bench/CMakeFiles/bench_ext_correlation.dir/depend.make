# Empty dependencies file for bench_ext_correlation.
# This may be replaced when dependencies are built.
