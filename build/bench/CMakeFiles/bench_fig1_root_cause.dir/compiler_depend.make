# Empty compiler generated dependencies file for bench_fig1_root_cause.
# This may be replaced when dependencies are built.
