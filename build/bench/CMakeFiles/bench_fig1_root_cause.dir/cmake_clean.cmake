file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_root_cause.dir/bench_fig1_root_cause.cpp.o"
  "CMakeFiles/bench_fig1_root_cause.dir/bench_fig1_root_cause.cpp.o.d"
  "bench_fig1_root_cause"
  "bench_fig1_root_cause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_root_cause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
