file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_fitting.dir/bench_perf_fitting.cpp.o"
  "CMakeFiles/bench_perf_fitting.dir/bench_perf_fitting.cpp.o.d"
  "bench_perf_fitting"
  "bench_perf_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
