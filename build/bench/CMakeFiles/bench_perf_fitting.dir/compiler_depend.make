# Empty compiler generated dependencies file for bench_perf_fitting.
# This may be replaced when dependencies are built.
