# Empty compiler generated dependencies file for bench_ablation_node_selection.
# This may be replaced when dependencies are built.
