
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_repair_stats.cpp" "bench/CMakeFiles/bench_table2_repair_stats.dir/bench_table2_repair_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_repair_stats.dir/bench_table2_repair_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hpcfail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hpcfail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcfail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hpcfail_report.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
