file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_failure_rates.dir/bench_fig2_failure_rates.cpp.o"
  "CMakeFiles/bench_fig2_failure_rates.dir/bench_fig2_failure_rates.cpp.o.d"
  "bench_fig2_failure_rates"
  "bench_fig2_failure_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_failure_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
