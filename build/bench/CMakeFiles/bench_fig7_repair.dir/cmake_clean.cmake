file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_repair.dir/bench_fig7_repair.cpp.o"
  "CMakeFiles/bench_fig7_repair.dir/bench_fig7_repair.cpp.o.d"
  "bench_fig7_repair"
  "bench_fig7_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
