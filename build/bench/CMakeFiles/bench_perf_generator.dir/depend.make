# Empty dependencies file for bench_perf_generator.
# This may be replaced when dependencies are built.
