file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_generator.dir/bench_perf_generator.cpp.o"
  "CMakeFiles/bench_perf_generator.dir/bench_perf_generator.cpp.o.d"
  "bench_perf_generator"
  "bench_perf_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
