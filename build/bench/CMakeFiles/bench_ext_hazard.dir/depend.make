# Empty dependencies file for bench_ext_hazard.
# This may be replaced when dependencies are built.
