file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hazard.dir/bench_ext_hazard.cpp.o"
  "CMakeFiles/bench_ext_hazard.dir/bench_ext_hazard.cpp.o.d"
  "bench_ext_hazard"
  "bench_ext_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
