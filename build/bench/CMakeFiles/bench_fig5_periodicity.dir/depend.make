# Empty dependencies file for bench_fig5_periodicity.
# This may be replaced when dependencies are built.
