file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_periodicity.dir/bench_fig5_periodicity.cpp.o"
  "CMakeFiles/bench_fig5_periodicity.dir/bench_fig5_periodicity.cpp.o.d"
  "bench_fig5_periodicity"
  "bench_fig5_periodicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
