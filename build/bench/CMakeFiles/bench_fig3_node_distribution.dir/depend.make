# Empty dependencies file for bench_fig3_node_distribution.
# This may be replaced when dependencies are built.
