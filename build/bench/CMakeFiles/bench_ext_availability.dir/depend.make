# Empty dependencies file for bench_ext_availability.
# This may be replaced when dependencies are built.
