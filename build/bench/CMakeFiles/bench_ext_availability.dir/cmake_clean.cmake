file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_availability.dir/bench_ext_availability.cpp.o"
  "CMakeFiles/bench_ext_availability.dir/bench_ext_availability.cpp.o.d"
  "bench_ext_availability"
  "bench_ext_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
