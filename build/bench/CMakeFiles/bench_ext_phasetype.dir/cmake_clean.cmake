file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_phasetype.dir/bench_ext_phasetype.cpp.o"
  "CMakeFiles/bench_ext_phasetype.dir/bench_ext_phasetype.cpp.o.d"
  "bench_ext_phasetype"
  "bench_ext_phasetype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_phasetype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
