# Empty compiler generated dependencies file for bench_ext_phasetype.
# This may be replaced when dependencies are built.
