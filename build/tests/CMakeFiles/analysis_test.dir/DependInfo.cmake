
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/availability_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/availability_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/availability_test.cpp.o.d"
  "/root/repo/tests/analysis/correlation_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/correlation_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/correlation_test.cpp.o.d"
  "/root/repo/tests/analysis/hazard_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/hazard_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/hazard_test.cpp.o.d"
  "/root/repo/tests/analysis/integration_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/integration_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/integration_test.cpp.o.d"
  "/root/repo/tests/analysis/interarrival_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/interarrival_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/interarrival_test.cpp.o.d"
  "/root/repo/tests/analysis/lifetime_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/lifetime_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/lifetime_test.cpp.o.d"
  "/root/repo/tests/analysis/multiseed_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/multiseed_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/multiseed_test.cpp.o.d"
  "/root/repo/tests/analysis/outliers_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/outliers_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/outliers_test.cpp.o.d"
  "/root/repo/tests/analysis/periodicity_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/periodicity_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/periodicity_test.cpp.o.d"
  "/root/repo/tests/analysis/rates_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/rates_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/rates_test.cpp.o.d"
  "/root/repo/tests/analysis/repair_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/repair_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/repair_test.cpp.o.d"
  "/root/repo/tests/analysis/root_cause_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/root_cause_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/root_cause_test.cpp.o.d"
  "/root/repo/tests/analysis/trend_test.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/trend_test.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/trend_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hpcfail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hpcfail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcfail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hpcfail_report.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
