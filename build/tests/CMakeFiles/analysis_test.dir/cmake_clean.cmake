file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/availability_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/availability_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/correlation_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/correlation_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/hazard_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/hazard_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/integration_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/integration_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/interarrival_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/interarrival_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/lifetime_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/lifetime_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/multiseed_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/multiseed_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/outliers_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/outliers_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/periodicity_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/periodicity_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/rates_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/rates_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/repair_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/repair_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/root_cause_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/root_cause_test.cpp.o.d"
  "CMakeFiles/analysis_test.dir/analysis/trend_test.cpp.o"
  "CMakeFiles/analysis_test.dir/analysis/trend_test.cpp.o.d"
  "analysis_test"
  "analysis_test.pdb"
  "analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
