
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/bootstrap_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/bootstrap_test.cpp.o.d"
  "/root/repo/tests/stats/descriptive_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/descriptive_test.cpp.o.d"
  "/root/repo/tests/stats/ecdf_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/ecdf_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/ecdf_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/ks_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/ks_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/ks_test.cpp.o.d"
  "/root/repo/tests/stats/qq_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/qq_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/qq_test.cpp.o.d"
  "/root/repo/tests/stats/solver_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/solver_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/solver_test.cpp.o.d"
  "/root/repo/tests/stats/special_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/special_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/special_test.cpp.o.d"
  "/root/repo/tests/stats/survival_test.cpp" "tests/CMakeFiles/stats_test.dir/stats/survival_test.cpp.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/survival_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hpcfail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hpcfail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcfail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hpcfail_report.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
