file(REMOVE_RECURSE
  "CMakeFiles/dist_test.dir/dist/empirical_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/empirical_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/exponential_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/exponential_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/fit_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/fit_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/gamma_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/gamma_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/hyperexp_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/hyperexp_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/lognormal_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/lognormal_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/normal_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/normal_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/pareto_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/pareto_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/poisson_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/poisson_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/property_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/property_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/weibull_censored_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/weibull_censored_test.cpp.o.d"
  "CMakeFiles/dist_test.dir/dist/weibull_test.cpp.o"
  "CMakeFiles/dist_test.dir/dist/weibull_test.cpp.o.d"
  "dist_test"
  "dist_test.pdb"
  "dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
