
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/empirical_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/empirical_test.cpp.o.d"
  "/root/repo/tests/dist/exponential_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/exponential_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/exponential_test.cpp.o.d"
  "/root/repo/tests/dist/fit_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/fit_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/fit_test.cpp.o.d"
  "/root/repo/tests/dist/gamma_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/gamma_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/gamma_test.cpp.o.d"
  "/root/repo/tests/dist/hyperexp_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/hyperexp_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/hyperexp_test.cpp.o.d"
  "/root/repo/tests/dist/lognormal_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/lognormal_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/lognormal_test.cpp.o.d"
  "/root/repo/tests/dist/normal_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/normal_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/normal_test.cpp.o.d"
  "/root/repo/tests/dist/pareto_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/pareto_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/pareto_test.cpp.o.d"
  "/root/repo/tests/dist/poisson_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/poisson_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/poisson_test.cpp.o.d"
  "/root/repo/tests/dist/property_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/property_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/property_test.cpp.o.d"
  "/root/repo/tests/dist/weibull_censored_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/weibull_censored_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/weibull_censored_test.cpp.o.d"
  "/root/repo/tests/dist/weibull_test.cpp" "tests/CMakeFiles/dist_test.dir/dist/weibull_test.cpp.o" "gcc" "tests/CMakeFiles/dist_test.dir/dist/weibull_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/hpcfail_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/hpcfail_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hpcfail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hpcfail_report.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
