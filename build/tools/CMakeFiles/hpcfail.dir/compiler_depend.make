# Empty compiler generated dependencies file for hpcfail.
# This may be replaced when dependencies are built.
