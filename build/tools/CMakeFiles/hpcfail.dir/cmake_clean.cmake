file(REMOVE_RECURSE
  "CMakeFiles/hpcfail.dir/hpcfail_cli.cpp.o"
  "CMakeFiles/hpcfail.dir/hpcfail_cli.cpp.o.d"
  "hpcfail"
  "hpcfail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
