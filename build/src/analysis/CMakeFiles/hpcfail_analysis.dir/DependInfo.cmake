
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/availability.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/availability.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/availability.cpp.o.d"
  "/root/repo/src/analysis/correlation.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/correlation.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/correlation.cpp.o.d"
  "/root/repo/src/analysis/hazard.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/hazard.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/hazard.cpp.o.d"
  "/root/repo/src/analysis/interarrival.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/interarrival.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/interarrival.cpp.o.d"
  "/root/repo/src/analysis/lifetime.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/lifetime.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/lifetime.cpp.o.d"
  "/root/repo/src/analysis/outliers.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/outliers.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/outliers.cpp.o.d"
  "/root/repo/src/analysis/periodicity.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/periodicity.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/periodicity.cpp.o.d"
  "/root/repo/src/analysis/rates.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/rates.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/rates.cpp.o.d"
  "/root/repo/src/analysis/repair.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/repair.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/repair.cpp.o.d"
  "/root/repo/src/analysis/root_cause.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/root_cause.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/root_cause.cpp.o.d"
  "/root/repo/src/analysis/trend.cpp" "src/analysis/CMakeFiles/hpcfail_analysis.dir/trend.cpp.o" "gcc" "src/analysis/CMakeFiles/hpcfail_analysis.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
