file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_analysis.dir/availability.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/availability.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/correlation.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/correlation.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/hazard.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/hazard.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/interarrival.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/interarrival.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/lifetime.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/lifetime.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/outliers.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/outliers.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/periodicity.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/periodicity.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/rates.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/rates.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/repair.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/repair.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/root_cause.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/root_cause.cpp.o.d"
  "CMakeFiles/hpcfail_analysis.dir/trend.cpp.o"
  "CMakeFiles/hpcfail_analysis.dir/trend.cpp.o.d"
  "libhpcfail_analysis.a"
  "libhpcfail_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
