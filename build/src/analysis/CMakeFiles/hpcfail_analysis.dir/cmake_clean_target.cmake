file(REMOVE_RECURSE
  "libhpcfail_analysis.a"
)
