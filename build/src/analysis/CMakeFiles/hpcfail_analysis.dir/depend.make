# Empty dependencies file for hpcfail_analysis.
# This may be replaced when dependencies are built.
