file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_trace.dir/catalog.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/catalog.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/dataset.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/dataset.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/io.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/io.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/types.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/types.cpp.o.d"
  "CMakeFiles/hpcfail_trace.dir/validate.cpp.o"
  "CMakeFiles/hpcfail_trace.dir/validate.cpp.o.d"
  "libhpcfail_trace.a"
  "libhpcfail_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
