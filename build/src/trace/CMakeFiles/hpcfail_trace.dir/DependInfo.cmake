
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/catalog.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/catalog.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/catalog.cpp.o.d"
  "/root/repo/src/trace/dataset.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/dataset.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/dataset.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/types.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/types.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/types.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/hpcfail_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/hpcfail_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
