file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/histogram.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/ks.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/ks.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/qq.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/qq.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/solver.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/solver.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/special.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/special.cpp.o.d"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o"
  "CMakeFiles/hpcfail_stats.dir/survival.cpp.o.d"
  "libhpcfail_stats.a"
  "libhpcfail_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
