
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/qq.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/qq.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/qq.cpp.o.d"
  "/root/repo/src/stats/solver.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/solver.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/solver.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "src/stats/CMakeFiles/hpcfail_stats.dir/survival.cpp.o" "gcc" "src/stats/CMakeFiles/hpcfail_stats.dir/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
