# Empty dependencies file for hpcfail_sim.
# This may be replaced when dependencies are built.
