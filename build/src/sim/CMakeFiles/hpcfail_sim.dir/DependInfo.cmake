
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/checkpoint.cpp" "src/sim/CMakeFiles/hpcfail_sim.dir/checkpoint.cpp.o" "gcc" "src/sim/CMakeFiles/hpcfail_sim.dir/checkpoint.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/hpcfail_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/hpcfail_sim.dir/cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
