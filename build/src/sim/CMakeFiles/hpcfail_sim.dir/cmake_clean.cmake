file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_sim.dir/checkpoint.cpp.o"
  "CMakeFiles/hpcfail_sim.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hpcfail_sim.dir/cluster.cpp.o"
  "CMakeFiles/hpcfail_sim.dir/cluster.cpp.o.d"
  "libhpcfail_sim.a"
  "libhpcfail_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
