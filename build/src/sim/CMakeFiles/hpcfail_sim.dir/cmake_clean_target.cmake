file(REMOVE_RECURSE
  "libhpcfail_sim.a"
)
