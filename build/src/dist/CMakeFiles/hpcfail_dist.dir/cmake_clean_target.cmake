file(REMOVE_RECURSE
  "libhpcfail_dist.a"
)
