# Empty compiler generated dependencies file for hpcfail_dist.
# This may be replaced when dependencies are built.
