file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_dist.dir/distribution.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/distribution.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/empirical.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/empirical.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/exponential.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/exponential.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/fit.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/fit.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/gamma.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/gamma.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/hyperexp.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/hyperexp.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/lognormal.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/lognormal.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/normal.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/normal.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/pareto.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/pareto.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/poisson.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/poisson.cpp.o.d"
  "CMakeFiles/hpcfail_dist.dir/weibull.cpp.o"
  "CMakeFiles/hpcfail_dist.dir/weibull.cpp.o.d"
  "libhpcfail_dist.a"
  "libhpcfail_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
