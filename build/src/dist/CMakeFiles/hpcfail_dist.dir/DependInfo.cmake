
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/distribution.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/distribution.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/distribution.cpp.o.d"
  "/root/repo/src/dist/empirical.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/empirical.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/empirical.cpp.o.d"
  "/root/repo/src/dist/exponential.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/exponential.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/exponential.cpp.o.d"
  "/root/repo/src/dist/fit.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/fit.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/fit.cpp.o.d"
  "/root/repo/src/dist/gamma.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/gamma.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/gamma.cpp.o.d"
  "/root/repo/src/dist/hyperexp.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/hyperexp.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/hyperexp.cpp.o.d"
  "/root/repo/src/dist/lognormal.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/lognormal.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/lognormal.cpp.o.d"
  "/root/repo/src/dist/normal.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/normal.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/normal.cpp.o.d"
  "/root/repo/src/dist/pareto.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/pareto.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/pareto.cpp.o.d"
  "/root/repo/src/dist/poisson.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/poisson.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/poisson.cpp.o.d"
  "/root/repo/src/dist/weibull.cpp" "src/dist/CMakeFiles/hpcfail_dist.dir/weibull.cpp.o" "gcc" "src/dist/CMakeFiles/hpcfail_dist.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
