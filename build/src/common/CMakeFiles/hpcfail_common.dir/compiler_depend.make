# Empty compiler generated dependencies file for hpcfail_common.
# This may be replaced when dependencies are built.
