file(REMOVE_RECURSE
  "libhpcfail_common.a"
)
