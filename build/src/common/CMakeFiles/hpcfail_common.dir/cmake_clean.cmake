file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_common.dir/csv.cpp.o"
  "CMakeFiles/hpcfail_common.dir/csv.cpp.o.d"
  "CMakeFiles/hpcfail_common.dir/error.cpp.o"
  "CMakeFiles/hpcfail_common.dir/error.cpp.o.d"
  "CMakeFiles/hpcfail_common.dir/rng.cpp.o"
  "CMakeFiles/hpcfail_common.dir/rng.cpp.o.d"
  "CMakeFiles/hpcfail_common.dir/strings.cpp.o"
  "CMakeFiles/hpcfail_common.dir/strings.cpp.o.d"
  "CMakeFiles/hpcfail_common.dir/time.cpp.o"
  "CMakeFiles/hpcfail_common.dir/time.cpp.o.d"
  "libhpcfail_common.a"
  "libhpcfail_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
