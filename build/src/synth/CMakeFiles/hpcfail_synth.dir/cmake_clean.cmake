file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_synth.dir/corruption.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/corruption.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/generator.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/generator.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/modulation.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/modulation.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/profile.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/profile.cpp.o.d"
  "CMakeFiles/hpcfail_synth.dir/scenario.cpp.o"
  "CMakeFiles/hpcfail_synth.dir/scenario.cpp.o.d"
  "libhpcfail_synth.a"
  "libhpcfail_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
