
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/corruption.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/corruption.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/corruption.cpp.o.d"
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/generator.cpp.o.d"
  "/root/repo/src/synth/modulation.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/modulation.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/modulation.cpp.o.d"
  "/root/repo/src/synth/profile.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/profile.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/profile.cpp.o.d"
  "/root/repo/src/synth/scenario.cpp" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario.cpp.o" "gcc" "src/synth/CMakeFiles/hpcfail_synth.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/hpcfail_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hpcfail_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpcfail_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
