file(REMOVE_RECURSE
  "libhpcfail_report.a"
)
