file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_report.dir/ascii_chart.cpp.o"
  "CMakeFiles/hpcfail_report.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/hpcfail_report.dir/series.cpp.o"
  "CMakeFiles/hpcfail_report.dir/series.cpp.o.d"
  "CMakeFiles/hpcfail_report.dir/table.cpp.o"
  "CMakeFiles/hpcfail_report.dir/table.cpp.o.d"
  "libhpcfail_report.a"
  "libhpcfail_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
